package dataset

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Stable binary serialization of tables — the storage layer of the durable
// checkpoint format (internal/durable). The encoding is versioned, fully
// self-contained (each nominal column carries its dictionary contents), and
// deterministic: encoding the same logical table twice yields byte-identical
// output, because every variable-order structure is serialized in a canonical
// order — schema fields in schema order, dictionary values in code order
// (Dict.Values' documented enumeration order). Shared append-only
// dictionaries are pinned to the prefix the encoded view's codes reference,
// so the bytes depend only on the view, never on how far concurrent ingest
// has grown the live dictionary since the view was taken. Checkpoint
// checksums and the byte-identity determinism test rely on this.
//
// Layout (all integers little-endian):
//
//	magic "IDBT1\x00"
//	u16 len | table name
//	u32 field count
//	per field: u8 kind | u16 len | field name
//	u64 row count
//	per column, in schema order:
//	  quantitative: u8 boundsOK | f64 lo | f64 hi | rows × f64 (IEEE-754 bits)
//	  nominal:      u32 dict len | per value (u32 len | bytes) | rows × u32 codes
//
// Quantitative columns persist their memoized min/max bounds so a decoded
// table skips the O(n) warm-up pass NewTable would otherwise pay — the whole
// point of a warm restart is to not redo per-row work.

// tableMagic frames one serialized table; the trailing byte versions the
// format, so a future layout change bumps the magic rather than guessing.
var tableMagic = []byte("IDBT1\x00")

// maxDecodeElems bounds any single length field read while decoding, so a
// corrupt or adversarial header cannot ask for a multi-terabyte allocation
// before the per-element bounds checks run.
const maxDecodeElems = 1 << 32

// EncodeTable serializes t into the stable checkpoint format.
func EncodeTable(t *Table) []byte {
	// Pre-size: headers are small; column payloads dominate.
	buf := make([]byte, 0, 64+tableBytes(t))
	buf = append(buf, tableMagic...)
	buf = appendString16(buf, t.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Schema.Len()))
	for _, f := range t.Schema.Fields {
		buf = append(buf, byte(f.Kind))
		buf = appendString16(buf, f.Name)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.NumRows()))
	for _, c := range t.Columns {
		if c.Field.Kind == Nominal {
			// Pin the serialized dictionary to the prefix the snapshotted
			// codes actually reference. The dictionary is shared and
			// append-only across the COW lineage, so by encode time it may
			// already hold values interned by batches newer than this view's
			// watermark; writing Dict.Values() wholesale would make the
			// checkpoint bytes depend on concurrent ingest progress rather
			// than on the view alone. The prefix is exactly the dictionary as
			// it stood when the view's last row was appended: interning
			// happens row-by-row, so every code < maxRef+1 was assigned at or
			// before the row that references maxRef.
			values := c.Dict.Values()
			dictLen := uint32(0)
			for _, code := range c.Codes {
				if code+1 > dictLen {
					dictLen = code + 1
				}
			}
			values = values[:dictLen]
			buf = binary.LittleEndian.AppendUint32(buf, dictLen)
			for _, v := range values {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
				buf = append(buf, v...)
			}
			for _, code := range c.Codes {
				buf = binary.LittleEndian.AppendUint32(buf, code)
			}
		} else {
			// MinMax (not the raw memo fields) keeps the encoding
			// deterministic regardless of whether a caller already warmed
			// the bounds: it computes them on first use.
			lo, hi, ok := c.MinMax()
			if ok {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lo))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(hi))
			for _, v := range c.Nums {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	return buf
}

// DecodeTable reconstructs a table from EncodeTable output. It never
// panics on corrupt input: every length is bounds-checked against the
// remaining data and every dictionary code against its dictionary, so a
// bit-flipped checkpoint segment surfaces as an error, not a crash.
func DecodeTable(data []byte) (*Table, error) {
	r := &byteReader{data: data}
	if !r.magic(tableMagic) {
		return nil, fmt.Errorf("dataset: decode table: bad magic")
	}
	name := r.string16()
	nFields := int(r.u32())
	if r.err == nil && nFields > maxDecodeElems {
		return nil, fmt.Errorf("dataset: decode table %q: implausible field count %d", name, nFields)
	}
	fields := make([]Field, 0, min(nFields, 1024))
	for i := 0; i < nFields && r.err == nil; i++ {
		k := Kind(r.u8())
		fn := r.string16()
		if k != Quantitative && k != Nominal {
			return nil, fmt.Errorf("dataset: decode table %q: field %q: unknown kind %d", name, fn, k)
		}
		fields = append(fields, Field{Name: fn, Kind: k})
	}
	rows64 := r.u64()
	if r.err != nil {
		return nil, fmt.Errorf("dataset: decode table %q: %w", name, r.err)
	}
	if rows64 > maxDecodeElems {
		return nil, fmt.Errorf("dataset: decode table %q: implausible row count %d", name, rows64)
	}
	rows := int(rows64)
	schema, err := NewSchema(fields)
	if err != nil {
		return nil, fmt.Errorf("dataset: decode table %q: %w", name, err)
	}
	cols := make([]*Column, 0, len(fields))
	for _, f := range fields {
		c := &Column{Field: f}
		if f.Kind == Nominal {
			dictLen := int(r.u32())
			if r.err == nil && int64(dictLen)*4 > int64(r.remaining()) {
				return nil, fmt.Errorf("dataset: decode table %q: column %q: truncated dictionary", name, f.Name)
			}
			d := NewDict()
			for j := 0; j < dictLen && r.err == nil; j++ {
				v := r.string32()
				if r.err != nil {
					break
				}
				if _, dup := d.Lookup(v); dup {
					return nil, fmt.Errorf("dataset: decode table %q: column %q: duplicate dictionary value %q", name, f.Name, v)
				}
				d.Code(v)
			}
			c.Dict = d
			c.Codes = make([]uint32, 0, min(rows, r.remaining()/4))
			for j := 0; j < rows && r.err == nil; j++ {
				code := r.u32()
				if r.err == nil && int(code) >= dictLen {
					return nil, fmt.Errorf("dataset: decode table %q: column %q: code %d out of range (dict len %d)", name, f.Name, code, dictLen)
				}
				c.Codes = append(c.Codes, code)
			}
		} else {
			ok := r.u8() != 0
			lo := math.Float64frombits(r.u64())
			hi := math.Float64frombits(r.u64())
			c.Nums = make([]float64, 0, min(rows, r.remaining()/8))
			for j := 0; j < rows && r.err == nil; j++ {
				c.Nums = append(c.Nums, math.Float64frombits(r.u64()))
			}
			if r.err == nil {
				c.seedMinMax(lo, hi, ok)
			}
		}
		if r.err != nil {
			return nil, fmt.Errorf("dataset: decode table %q: column %q: %w", name, f.Name, r.err)
		}
		cols = append(cols, c)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("dataset: decode table %q: %d trailing bytes", name, r.remaining())
	}
	t, err := NewTable(name, schema, cols)
	if err != nil {
		return nil, fmt.Errorf("dataset: decode table: %w", err)
	}
	return t, nil
}

func appendString16(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16] // names never approach this; guard anyway
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// byteReader is a bounds-checked cursor with latching errors: after the
// first out-of-range read every later read returns zero values, and the
// caller checks err once per column rather than per field.
type byteReader struct {
	data []byte
	off  int
	err  error
}

var errTruncated = fmt.Errorf("truncated input")

func (r *byteReader) remaining() int { return len(r.data) - r.off }

func (r *byteReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.remaining() < n {
		r.err = errTruncated
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *byteReader) magic(want []byte) bool {
	b := r.take(len(want))
	if r.err != nil {
		return false
	}
	return string(b) == string(want)
}

func (r *byteReader) u8() byte {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) u64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *byteReader) string16() string {
	n := int(r.u16())
	return string(r.take(n))
}

func (r *byteReader) string32() string {
	n := r.u32()
	if r.err == nil && int64(n) > int64(r.remaining()) {
		r.err = errTruncated
		return ""
	}
	return string(r.take(int(n)))
}
