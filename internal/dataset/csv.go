package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV streams the table as RFC-4180 CSV with a header row. The paper's
// systems all ingest CSV (Sec. 5.2 "data stored in a CSV file can be loaded
// ..."), so CSV is the interchange format between datagen and the engines'
// load path when measuring data preparation time.
func WriteCSV(w io.Writer, t *Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := csv.NewWriter(bw)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, len(t.Columns))
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Columns {
			row[j] = c.ValueString(i)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCSVFile writes the table to path, creating or truncating it.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCSV loads a table whose header must match the schema's field names
// exactly (order included). Quantitative fields are parsed as float64;
// unparsable numerics are an error with the offending line number.
func ReadCSV(r io.Reader, name string, schema *Schema) (*Table, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("dataset: header has %d fields, schema %d", len(header), schema.Len())
	}
	for i, h := range header {
		if h != schema.Fields[i].Name {
			return nil, fmt.Errorf("dataset: header field %d is %q, want %q", i, h, schema.Fields[i].Name)
		}
	}

	b := NewBuilder(name, schema, 0)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line+1, err)
		}
		line++
		for i, f := range schema.Fields {
			if f.Kind == Nominal {
				b.AppendString(i, rec[i])
				continue
			}
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %q: %w", line, f.Name, err)
			}
			b.AppendNum(i, v)
		}
	}
	return b.Build()
}

// ReadCSVFile loads a table from path.
func ReadCSVFile(path, name string, schema *Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, schema)
}

// formatFloat renders numbers compactly: integers without a decimal point,
// everything else with minimal digits.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
