package dataset

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// ColumnStats summarizes one column: range and moments for quantitative
// attributes, cardinality and top values for nominal ones. The workload
// generator and the datagen CLI use these to pick bin widths and to let
// users sanity-check generated data against the seed.
type ColumnStats struct {
	Field Field
	Rows  int

	// Quantitative summary (zero for nominal columns).
	Min, Max, Mean, Stddev float64

	// Nominal summary (zero/nil for quantitative columns).
	Cardinality int
	// TopValues holds up to 5 most frequent values with their counts,
	// descending.
	TopValues []ValueCount
}

// ValueCount pairs a nominal value with its frequency.
type ValueCount struct {
	Value string
	Count int
}

// Stats computes per-column summaries for the table.
func Stats(t *Table) []ColumnStats {
	out := make([]ColumnStats, len(t.Columns))
	for i, col := range t.Columns {
		s := ColumnStats{Field: col.Field, Rows: col.Len()}
		if col.Field.Kind == Quantitative {
			s.Min, s.Max, s.Mean, s.Stddev = numericSummary(col.Nums)
		} else {
			s.Cardinality, s.TopValues = nominalSummary(col)
		}
		out[i] = s
	}
	return out
}

func numericSummary(nums []float64) (min, max, mean, stddev float64) {
	if len(nums) == 0 {
		return 0, 0, 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, v := range nums {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean = sum / float64(len(nums))
	var m2 float64
	for _, v := range nums {
		m2 += (v - mean) * (v - mean)
	}
	if len(nums) > 1 {
		stddev = math.Sqrt(m2 / float64(len(nums)-1))
	}
	return min, max, mean, stddev
}

func nominalSummary(col *Column) (int, []ValueCount) {
	counts := make(map[uint32]int)
	for _, c := range col.Codes {
		counts[c]++
	}
	vcs := make([]ValueCount, 0, len(counts))
	for code, n := range counts {
		vcs = append(vcs, ValueCount{Value: col.Dict.Value(code), Count: n})
	}
	sort.Slice(vcs, func(i, j int) bool {
		if vcs[i].Count != vcs[j].Count {
			return vcs[i].Count > vcs[j].Count
		}
		return vcs[i].Value < vcs[j].Value
	})
	card := len(vcs)
	if len(vcs) > 5 {
		vcs = vcs[:5]
	}
	return card, vcs
}

// RenderStats writes the summaries as an aligned table.
func RenderStats(w io.Writer, stats []ColumnStats) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "column\tkind\trows\tmin\tmax\tmean\tstddev\tcardinality\ttop values")
	for _, s := range stats {
		if s.Field.Kind == Quantitative {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t\t\n",
				s.Field.Name, s.Field.Kind, s.Rows, s.Min, s.Max, s.Mean, s.Stddev)
			continue
		}
		top := ""
		for i, vc := range s.TopValues {
			if i > 0 {
				top += " "
			}
			top += fmt.Sprintf("%s(%d)", vc.Value, vc.Count)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t\t\t\t\t%d\t%s\n",
			s.Field.Name, s.Field.Kind, s.Rows, s.Cardinality, top)
	}
	return tw.Flush()
}
