package dataset

// SelectRows materializes the given physical rows of t as a new table (the
// "sample tables created offline" of AQP systems). Nominal columns share the
// parent dictionary so codes remain comparable across the original and the
// sample.
func SelectRows(t *Table, rows []uint32) (*Table, error) {
	b := NewBuilder(t.Name, t.Schema, len(rows))
	for j, col := range t.Columns {
		if col.Field.Kind == Nominal {
			b.SetDict(j, col.Dict)
			for _, r := range rows {
				b.AppendCode(j, col.Codes[r])
			}
		} else {
			for _, r := range rows {
				b.AppendNum(j, col.Nums[r])
			}
		}
	}
	return b.Build()
}
