package dataset

import "fmt"

// ReorderTable materializes t with its rows permuted: row i of the result is
// row perm[i] of t. The progressive engines use it at prepare time to store
// the fact table in their online-sampling order, turning "scan the next chunk
// of the permutation" — a random-order gather that cache-misses on every
// column read — into a sequential range scan over dense storage.
//
// perm must be a permutation of [0, t.NumRows()). Nominal columns share the
// parent dictionary so codes stay comparable between the original and the
// reordered copy, and quantitative columns (including positional FK columns,
// whose values are dimension row indices and therefore survive a fact-side
// reorder untouched) carry their memoized min/max bounds over — a permutation
// preserves the value multiset, so the reordered table skips the O(n)
// bounds pass NewTable would otherwise pay per column.
func ReorderTable(t *Table, perm []uint32) (*Table, error) {
	n := t.NumRows()
	if len(perm) != n {
		return nil, fmt.Errorf("dataset: reorder %q: permutation has %d entries for %d rows", t.Name, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, fmt.Errorf("dataset: reorder %q: not a permutation of [0,%d)", t.Name, n)
		}
		seen[p] = true
	}
	cols := make([]*Column, len(t.Columns))
	for i, c := range t.Columns {
		nc := &Column{Field: c.Field, Dict: c.Dict}
		if c.Field.Kind == Nominal {
			nc.Codes = make([]uint32, n)
			for j, p := range perm {
				nc.Codes[j] = c.Codes[p]
			}
		} else {
			nc.Nums = make([]float64, n)
			for j, p := range perm {
				nc.Nums[j] = c.Nums[p]
			}
			lo, hi, ok := c.MinMax()
			nc.seedMinMax(lo, hi, ok)
		}
		cols[i] = nc
	}
	return NewTable(t.Name, t.Schema, cols)
}

// seedMinMax pre-fills the memoized bounds of a freshly built column whose
// value multiset is known (a reorder preserves it; an append extends it by
// the batch's own bounds). It overwrites any previous memo state.
func (c *Column) seedMinMax(lo, hi float64, ok bool) {
	c.mmMu.Lock()
	c.mmDone = true
	c.mmLo, c.mmHi, c.mmOK = lo, hi, ok
	c.mmMu.Unlock()
}

// ReorderFact returns a database whose fact table is reordered by perm while
// dimension tables are shared unchanged. Fact-side FK columns are permuted
// with the rest of the fact row, and their values — positional dimension row
// indices — still resolve against the unmoved dimension tables, so
// star-schema queries compile and join identically against the copy.
func (db *Database) ReorderFact(perm []uint32) (*Database, error) {
	fact, err := ReorderTable(db.Fact, perm)
	if err != nil {
		return nil, err
	}
	return &Database{Fact: fact, Dimensions: db.Dimensions}, nil
}
