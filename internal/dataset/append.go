package dataset

import (
	"fmt"
	"math"
	"sync"
)

// TableAppender owns the mutable storage lineage of one growing table: the
// single writer through which append-only batches land. Every Append
// produces a fresh immutable *Table view over the grown storage, so readers
// follow the usual snapshot discipline — a query keeps scanning the view it
// compiled against (slice headers pin the row count it saw) while new
// queries compile against the latest view. Growth is amortized: batches are
// appended in place into privately owned buffers, reallocating
// geometrically like any Go slice, never copying the whole table per batch.
//
// Ownership is the safety contract: exactly one appender may own a column's
// backing storage. Construct with NewTableAppender(t, true) only when t's
// storage is private to the caller (an engine's Prepare-time copy, a
// reordered materialization); NewTableAppender(t, false) copies the storage
// up front, which is what callers holding a table shared with other
// components must use — two lineages appending into shared backing arrays
// would race.
type TableAppender struct {
	mu     sync.Mutex
	name   string
	schema *Schema
	rows   int
	nums   [][]float64 // one per column; nil for nominal columns
	codes  [][]uint32  // one per column; nil for quantitative columns
	dicts  []*Dict

	// Running value bounds per quantitative column, folded batch-by-batch so
	// every appended view's memo is seeded in O(columns) instead of re-paying
	// the O(rows) pass NewTable would.
	mmLo, mmHi []float64
	mmOK       []bool

	cur *Table
}

// NewTableAppender wraps t as the base of an append lineage. adopt declares
// that t's column storage is privately owned by the caller and may be grown
// in place; with adopt false the storage is copied first.
func NewTableAppender(t *Table, adopt bool) *TableAppender {
	n := t.NumRows()
	a := &TableAppender{
		name:   t.Name,
		schema: t.Schema,
		rows:   n,
		nums:   make([][]float64, len(t.Columns)),
		codes:  make([][]uint32, len(t.Columns)),
		dicts:  make([]*Dict, len(t.Columns)),
		mmLo:   make([]float64, len(t.Columns)),
		mmHi:   make([]float64, len(t.Columns)),
		mmOK:   make([]bool, len(t.Columns)),
		cur:    t,
	}
	for i, c := range t.Columns {
		a.dicts[i] = c.Dict
		if c.Field.Kind == Nominal {
			if adopt {
				a.codes[i] = c.Codes
			} else {
				a.codes[i] = append(make([]uint32, 0, n+n/4+64), c.Codes...)
			}
		} else {
			if adopt {
				a.nums[i] = c.Nums
			} else {
				a.nums[i] = append(make([]float64, 0, n+n/4+64), c.Nums...)
			}
			a.mmLo[i], a.mmHi[i], a.mmOK[i] = c.MinMax()
		}
	}
	if !adopt {
		a.cur = a.viewLocked()
	}
	return a
}

// View returns the latest immutable table view.
func (a *TableAppender) View() *Table {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// NumRows returns the current lineage row count.
func (a *TableAppender) NumRows() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rows
}

// Append grows the lineage by batch's rows and returns the new view. The
// batch must have the same schema and share the lineage's dictionaries for
// nominal columns (so its codes are directly valid); it is what
// materializing an ingest batch against the current view produces.
func (a *TableAppender) Append(batch *Table) (*Table, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.checkBatchLocked(batch); err != nil {
		return nil, err
	}
	for i, c := range batch.Columns {
		if c.Field.Kind == Nominal {
			a.codes[i] = append(a.codes[i], c.Codes...)
			continue
		}
		a.nums[i] = append(a.nums[i], c.Nums...)
		lo, hi, ok := c.MinMax()
		switch {
		case !ok:
			// NaN (or empty) batch column: bounds of the union are unknown.
			a.mmOK[i] = batch.NumRows() == 0 && a.mmOK[i]
		case !a.mmOK[i] && a.rows == 0:
			a.mmLo[i], a.mmHi[i], a.mmOK[i] = lo, hi, true
		case a.mmOK[i]:
			a.mmLo[i] = math.Min(a.mmLo[i], lo)
			a.mmHi[i] = math.Max(a.mmHi[i], hi)
		}
	}
	a.rows += batch.NumRows()
	a.cur = a.viewLocked()
	return a.cur, nil
}

// checkBatchLocked validates schema identity and dictionary sharing.
func (a *TableAppender) checkBatchLocked(batch *Table) error {
	if batch.Schema.Len() != a.schema.Len() {
		return fmt.Errorf("dataset: append to %q: batch has %d fields, want %d",
			a.name, batch.Schema.Len(), a.schema.Len())
	}
	for i, f := range batch.Schema.Fields {
		if f != a.schema.Fields[i] {
			return fmt.Errorf("dataset: append to %q: field %d is %+v, want %+v",
				a.name, i, f, a.schema.Fields[i])
		}
		if f.Kind == Nominal && batch.Columns[i].Dict != a.dicts[i] {
			return fmt.Errorf("dataset: append to %q: column %q does not share the lineage dictionary",
				a.name, f.Name)
		}
	}
	return nil
}

// viewLocked builds an immutable Table over the current storage, seeding
// every quantitative column's bounds memo from the running fold.
func (a *TableAppender) viewLocked() *Table {
	cols := make([]*Column, a.schema.Len())
	for i, f := range a.schema.Fields {
		c := &Column{Field: f, Dict: a.dicts[i]}
		if f.Kind == Nominal {
			c.Codes = a.codes[i][:len(a.codes[i]):len(a.codes[i])]
		} else {
			c.Nums = a.nums[i][:len(a.nums[i]):len(a.nums[i])]
			c.seedMinMax(a.mmLo[i], a.mmHi[i], a.mmOK[i])
		}
		cols[i] = c
	}
	t, err := NewTable(a.name, a.schema, cols)
	if err != nil {
		// Unreachable: the appender maintains equal column lengths by
		// construction; a panic here means its own invariant broke.
		panic(fmt.Sprintf("dataset: appender view: %v", err))
	}
	return t
}

// ValidateFKBatch checks that a fact-table batch's foreign-key values
// resolve positionally in db's dimension tables: integral and within
// [0, dimension rows). Append paths on normalized schemas call it before
// growing the fact table, so a malformed ingest batch cannot plant
// out-of-range joins that every later scan would chase.
func (db *Database) ValidateFKBatch(batch *Table) error {
	for _, d := range db.Dimensions {
		i := batch.Schema.FieldIndex(d.FKColumn)
		if i < 0 {
			return fmt.Errorf("dataset: batch lacks FK column %q", d.FKColumn)
		}
		col := batch.Columns[i]
		if col.Field.Kind != Quantitative {
			return fmt.Errorf("dataset: FK column %q is not quantitative", d.FKColumn)
		}
		limit := float64(d.Table.NumRows())
		for r, v := range col.Nums {
			if v != math.Trunc(v) || v < 0 || v >= limit {
				return fmt.Errorf("dataset: batch row %d: FK %q = %v outside dimension %q [0,%d)",
					r, d.FKColumn, v, d.Table.Name, d.Table.NumRows())
			}
		}
	}
	return nil
}
