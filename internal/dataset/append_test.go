package dataset

import (
	"fmt"
	"sync"
	"testing"
)

func smallSchema() *Schema {
	return MustSchema([]Field{
		{Name: "carrier", Kind: Nominal},
		{Name: "delay", Kind: Quantitative},
	})
}

func buildSmall(t *testing.T, rows int) *Table {
	t.Helper()
	b := NewBuilder("flights", smallSchema(), rows)
	for i := 0; i < rows; i++ {
		b.AppendString(0, fmt.Sprintf("C%d", i%3))
		b.AppendNum(1, float64(10+i))
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestMinMaxInvalidatedOnMutation is the regression test for the memo
// footgun: a memoized bound computed before a mutation must not survive it.
func TestMinMaxInvalidatedOnMutation(t *testing.T) {
	tbl := buildSmall(t, 4) // delay in [10, 13], memo warmed by Build
	col := tbl.Column("delay")
	if lo, hi, ok := col.MinMax(); !ok || lo != 10 || hi != 13 {
		t.Fatalf("warm bounds = (%v, %v, %v), want (10, 13, true)", lo, hi, ok)
	}
	col.AppendNum(-5)
	col.AppendNum(99)
	lo, hi, ok := col.MinMax()
	if !ok || lo != -5 || hi != 99 {
		t.Fatalf("bounds after append = (%v, %v, %v), want (-5, 99, true)", lo, hi, ok)
	}
}

// TestBuilderInvalidatesMidBuildMemo pins the same guard on the builder
// path: calling MinMax between appends must not freeze the bounds Build
// later warms.
func TestBuilderInvalidatesMidBuildMemo(t *testing.T) {
	b := NewBuilder("t", MustSchema([]Field{{Name: "x", Kind: Quantitative}}), 4)
	b.AppendNum(0, 1)
	b.columns[0].MinMax() // memoizes (1, 1)
	b.AppendNum(0, 42)
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := tbl.Column("x").MinMax(); !ok || lo != 1 || hi != 42 {
		t.Fatalf("bounds = (%v, %v, %v), want (1, 42, true)", lo, hi, ok)
	}
}

// makeBatch builds an append batch sharing base's dictionaries, the shape
// ingest materialization produces.
func makeBatch(t *testing.T, base *Table, carriers []string, delays []float64) *Table {
	t.Helper()
	b := NewBuilder(base.Name, base.Schema, len(carriers))
	b.SetDict(0, base.Columns[0].Dict)
	for i := range carriers {
		b.AppendString(0, carriers[i])
		b.AppendNum(1, delays[i])
	}
	batch, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

func TestTableAppenderGrowsViews(t *testing.T) {
	base := buildSmall(t, 10)
	app := NewTableAppender(base, true)

	v0 := app.View()
	batch := makeBatch(t, base, []string{"C9", "C0"}, []float64{-100, 500})
	v1, err := app.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if v0.NumRows() != 10 {
		t.Errorf("old view grew to %d rows", v0.NumRows())
	}
	if v1.NumRows() != 12 {
		t.Errorf("new view has %d rows, want 12", v1.NumRows())
	}
	// Old view must still read its original rows (snapshot semantics).
	if got := v0.Column("delay").Nums[9]; got != 19 {
		t.Errorf("old view row 9 = %v, want 19", got)
	}
	// New view sees the appended tail and the new dictionary code.
	if got := v1.Column("carrier").ValueString(10); got != "C9" {
		t.Errorf("appended nominal = %q, want C9", got)
	}
	if lo, hi, ok := v1.Column("delay").MinMax(); !ok || lo != -100 || hi != 500 {
		t.Errorf("new view bounds = (%v, %v, %v), want (-100, 500, true)", lo, hi, ok)
	}
	if lo, hi, ok := v0.Column("delay").MinMax(); !ok || lo != 10 || hi != 19 {
		t.Errorf("old view bounds = (%v, %v, %v), want (10, 19, true)", lo, hi, ok)
	}
}

// TestTableAppenderCopyMode asserts that a non-adopting appender leaves the
// base table's storage untouched: two lineages over the same base must not
// interfere.
func TestTableAppenderCopyMode(t *testing.T) {
	base := buildSmall(t, 8)
	a1 := NewTableAppender(base, false)
	a2 := NewTableAppender(base, false)
	batch := makeBatch(t, base, []string{"C1"}, []float64{7})
	if _, err := a1.Append(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Append(batch); err != nil {
		t.Fatal(err)
	}
	if base.NumRows() != 8 || len(base.Column("delay").Nums) != 8 {
		t.Fatalf("base table mutated by copy-mode appenders")
	}
	if a1.NumRows() != 9 || a2.NumRows() != 9 {
		t.Fatalf("lineages = %d and %d rows, want 9 each", a1.NumRows(), a2.NumRows())
	}
}

func TestTableAppenderRejectsForeignDict(t *testing.T) {
	base := buildSmall(t, 4)
	app := NewTableAppender(base, true)
	b := NewBuilder(base.Name, base.Schema, 1)
	b.AppendString(0, "C0") // fresh dict, not the lineage's
	b.AppendNum(1, 1)
	batch, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Append(batch); err == nil {
		t.Fatal("append with a foreign dictionary should fail")
	}
}

// TestDictConcurrentInternAndRead exercises the dictionary under the live
// ingestion access pattern: one writer interning while readers look up,
// render and enumerate. Run with -race.
func TestDictConcurrentInternAndRead(t *testing.T) {
	d := NewDict()
	d.Code("base")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			d.Code(fmt.Sprintf("v%d", i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			d.Lookup("base")
			d.Value(uint32(i % (d.Len() + 1)))
			d.Values()
		}
	}()
	wg.Wait()
	if d.Len() != 2001 {
		t.Fatalf("dict has %d values, want 2001", d.Len())
	}
}

func TestValidateFKBatch(t *testing.T) {
	dimSchema := MustSchema([]Field{{Name: "name", Kind: Nominal}})
	db2 := NewBuilder("dim", dimSchema, 2)
	db2.AppendString(0, "a")
	db2.AppendString(0, "b")
	dim, err := db2.Build()
	if err != nil {
		t.Fatal(err)
	}
	factSchema := MustSchema([]Field{{Name: "fk", Kind: Quantitative}})
	mk := func(vals ...float64) *Table {
		fb := NewBuilder("fact", factSchema, len(vals))
		for _, v := range vals {
			fb.AppendNum(0, v)
		}
		tbl, err := fb.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	db := &Database{Fact: mk(0, 1), Dimensions: []*Dimension{{Table: dim, FKColumn: "fk"}}}
	if err := db.ValidateFKBatch(mk(0, 1, 1)); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := db.ValidateFKBatch(mk(2)); err == nil {
		t.Error("out-of-range FK accepted")
	}
	if err := db.ValidateFKBatch(mk(0.5)); err == nil {
		t.Error("non-integral FK accepted")
	}
}
