package dataset

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Column is one attribute's storage. Exactly one of Nums/Codes is non-nil,
// depending on the field kind. Nominal values are dictionary-encoded: Codes
// holds indices into Dict.
type Column struct {
	Field Field
	Nums  []float64 // quantitative storage
	Codes []uint32  // nominal storage (dictionary codes)
	Dict  *Dict     // nominal dictionary, shared between derived tables

	// Lazily-memoized value bounds. Tables are effectively immutable once
	// built, so the first caller pays one tight O(n) pass and every later
	// query plan gets the bounds for free (the engine's dense group-by fast
	// path sizes its accumulator array from them). Mutation — a Builder
	// append, or the append-only growth path — invalidates the memo, so a
	// stale bound can never leak into a plan compiled after an append.
	mmMu       sync.Mutex
	mmDone     bool
	mmLo, mmHi float64
	mmOK       bool
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	if c.Field.Kind == Nominal {
		return len(c.Codes)
	}
	return len(c.Nums)
}

// MinMax returns the value bounds of a quantitative column, memoized on
// first use. ok is false for nominal or empty columns and for columns
// containing NaN (whose values no finite interval bounds).
func (c *Column) MinMax() (lo, hi float64, ok bool) {
	c.mmMu.Lock()
	defer c.mmMu.Unlock()
	if !c.mmDone {
		c.mmDone = true
		c.mmLo, c.mmHi, c.mmOK = 0, 0, false
		if c.Field.Kind == Quantitative && len(c.Nums) > 0 {
			lo, hi, ok := c.Nums[0], c.Nums[0], true
			for _, v := range c.Nums {
				if math.IsNaN(v) {
					ok = false
					break
				}
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if ok {
				c.mmLo, c.mmHi, c.mmOK = lo, hi, true
			}
		}
	}
	return c.mmLo, c.mmHi, c.mmOK
}

// InvalidateMinMax drops the memoized bounds; every in-place mutation of
// quantitative storage must either call it (Column.AppendNum does per
// value, Builder.Build once per build) or re-seed the memo with bounds
// covering the new contents (the table-growth lineage does, via
// seedMinMax). Without the guard a memoized bound computed before an
// append would silently under-size the engine's dense group-by
// accumulators for rows appended outside the old value range.
func (c *Column) InvalidateMinMax() {
	c.mmMu.Lock()
	c.mmDone = false
	c.mmMu.Unlock()
}

// AppendNum appends a quantitative value, invalidating the bounds memo.
// It is the canonical mutator for growing a built column in place; bulk
// paths (the Builder, which invalidates once at Build, and TableAppender,
// which re-seeds the memo per batch) may bypass it, but must then maintain
// the memo themselves exactly as those two do.
func (c *Column) AppendNum(v float64) {
	c.Nums = append(c.Nums, v)
	c.InvalidateMinMax()
}

// AppendCode appends a dictionary code, which must be valid for c.Dict.
// Nominal columns have no bounds memo, so no invalidation is needed.
func (c *Column) AppendCode(code uint32) {
	c.Codes = append(c.Codes, code)
}

// ValueString renders row i for reports and CSV export.
func (c *Column) ValueString(i int) string {
	if c.Field.Kind == Nominal {
		return c.Dict.Value(c.Codes[i])
	}
	return formatFloat(c.Nums[i])
}

// Dict is an append-only string dictionary for a nominal column. It is safe
// for concurrent use: live ingestion interns new values into dictionaries
// that are shared with engine copies whose scans, plan compilations and
// report renderings run concurrently.
type Dict struct {
	mu     sync.RWMutex
	values []string
	index  map[string]uint32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]uint32)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) uint32 {
	d.mu.RLock()
	c, ok := d.index[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.index[s]; ok {
		return c
	}
	c = uint32(len(d.values))
	d.values = append(d.values, s)
	d.index[s] = c
	return c
}

// Lookup returns the code for s without interning.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.index[s]
	return c, ok
}

// Value returns the string for a code; out-of-range codes yield a marker
// rather than panicking, because report rendering must never take the
// benchmark down.
func (d *Dict) Value(c uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(c) >= len(d.values) {
		return fmt.Sprintf("<code:%d>", c)
	}
	return d.values[c]
}

// Len returns the dictionary cardinality.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.values)
}

// Values returns a copy of the dictionary contents in code order. (A shared
// slice would race with concurrent interning under live ingestion.) Code
// order is the canonical, deterministic enumeration and serialization order:
// codes are assigned sequentially at interning time, never reused and never
// reordered, so two dictionaries built by the same interning sequence
// enumerate identically. The checkpoint codec (codec.go) serializes
// dictionaries in this order, which is what makes two checkpoints of the
// same logical database byte-identical.
func (d *Dict) Values() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.values...)
}

// Table is an immutable columnar table view. All engines share Table
// values; nothing mutates a table after construction, so concurrent scans
// need no locking. Append-only growth goes through TableAppender
// (append.go), which produces a fresh Table view per batch while in-flight
// scans keep reading the view they compiled against.
type Table struct {
	Name    string
	Schema  *Schema
	Columns []*Column
	rows    int
}

// NewTable assembles a table from columns that must match the schema order
// and agree on length.
func NewTable(name string, schema *Schema, columns []*Column) (*Table, error) {
	if len(columns) != schema.Len() {
		return nil, fmt.Errorf("dataset: table %q: %d columns for %d fields", name, len(columns), schema.Len())
	}
	rows := -1
	for i, c := range columns {
		if c.Field != schema.Fields[i] {
			return nil, fmt.Errorf("dataset: table %q: column %d field mismatch", name, i)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("dataset: table %q: ragged columns (%d vs %d rows)", name, rows, c.Len())
		}
		if c.Field.Kind == Nominal && c.Dict == nil {
			return nil, fmt.Errorf("dataset: table %q: nominal column %q without dictionary", name, c.Field.Name)
		}
	}
	if rows == -1 {
		rows = 0
	}
	// Warm the memoized column bounds now so the cost lands in table build
	// (data preparation time) rather than in the first query that compiles
	// a plan against the column — the benchmark keeps pre-processing and
	// query time strictly separate.
	for _, c := range columns {
		if c.Field.Kind == Quantitative {
			c.MinMax()
		}
	}
	return &Table{Name: name, Schema: schema, Columns: columns, rows: rows}, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.Schema.FieldIndex(name)
	if i < 0 {
		return nil
	}
	return t.Columns[i]
}

// Builder accumulates rows for a new table. It is not safe for concurrent
// use; generators build per-goroutine shards and merge them instead.
type Builder struct {
	name    string
	schema  *Schema
	columns []*Column
}

// NewBuilder prepares a builder with empty columns (capacity hint optional).
func NewBuilder(name string, schema *Schema, capacity int) *Builder {
	cols := make([]*Column, schema.Len())
	for i, f := range schema.Fields {
		c := &Column{Field: f}
		if f.Kind == Nominal {
			c.Codes = make([]uint32, 0, capacity)
			c.Dict = NewDict()
		} else {
			c.Nums = make([]float64, 0, capacity)
		}
		cols[i] = c
	}
	return &Builder{name: name, schema: schema, columns: cols}
}

// AppendNum appends a quantitative value to column i. The bounds memo is
// not invalidated per value — a memo is pointless mid-build and Build
// invalidates every column once — keeping the bulk-construction hot path
// free of per-cell locking.
func (b *Builder) AppendNum(i int, v float64) {
	b.columns[i].Nums = append(b.columns[i].Nums, v)
}

// AppendString appends (and interns) a nominal value to column i.
func (b *Builder) AppendString(i int, s string) {
	c := b.columns[i]
	c.Codes = append(c.Codes, c.Dict.Code(s))
}

// AppendCode appends a pre-interned code to nominal column i. The caller is
// responsible for the code being valid for the column's dictionary.
func (b *Builder) AppendCode(i int, code uint32) {
	c := b.columns[i]
	c.Codes = append(c.Codes, code)
}

// SetDict replaces the dictionary of nominal column i; used when a derived
// table shares its parent's dictionary so codes stay comparable.
func (b *Builder) SetDict(i int, d *Dict) { b.columns[i].Dict = d }

// Dict returns the dictionary of nominal column i.
func (b *Builder) Dict(i int) *Dict { return b.columns[i].Dict }

// Build finalizes the table. Bounds memos are invalidated first — the
// builder appends raw storage for speed, so a MinMax call interleaved with
// appends (the footgun the memo guard exists for) must not survive into
// the built table's warmed bounds.
func (b *Builder) Build() (*Table, error) {
	for _, c := range b.columns {
		c.InvalidateMinMax()
	}
	return NewTable(b.name, b.schema, b.columns)
}

// Database is a (possibly star-shaped) set of tables: one fact table plus
// zero or more dimension tables joined via foreign-key columns in the fact
// table. A de-normalized database has Dimensions == nil.
type Database struct {
	Fact       *Table
	Dimensions []*Dimension
}

// Dimension describes one dimension table and the fact-side foreign key.
// Rows in the dimension table are addressed positionally: the FK column in
// the fact table stores the dimension row index, the common physical layout
// after dictionary encoding (and what makes positional joins possible).
type Dimension struct {
	Table *Table
	// FKColumn is the fact-table column holding dimension row indices.
	FKColumn string
}

// NumRows returns the fact-table row count.
func (db *Database) NumRows() int { return db.Fact.NumRows() }

// IsNormalized reports whether the database uses a star schema.
func (db *Database) IsNormalized() bool { return len(db.Dimensions) > 0 }

// ResolveColumn finds the named attribute either in the fact table or in a
// dimension table. For dimension attributes it returns the dimension and the
// fact-side FK column used to reach it.
func (db *Database) ResolveColumn(name string) (col *Column, dim *Dimension, fk *Column, err error) {
	if c := db.Fact.Column(name); c != nil {
		return c, nil, nil, nil
	}
	for _, d := range db.Dimensions {
		if c := d.Table.Column(name); c != nil {
			fkc := db.Fact.Column(d.FKColumn)
			if fkc == nil {
				return nil, nil, nil, fmt.Errorf("dataset: dimension %q: fact table lacks FK column %q", d.Table.Name, d.FKColumn)
			}
			return c, d, fkc, nil
		}
	}
	return nil, nil, nil, fmt.Errorf("dataset: unknown column %q", name)
}

// TotalBytes estimates the resident size of all tables, used by the data
// preparation report.
func (db *Database) TotalBytes() int64 {
	total := tableBytes(db.Fact)
	for _, d := range db.Dimensions {
		total += tableBytes(d.Table)
	}
	return total
}

func tableBytes(t *Table) int64 {
	var b int64
	for _, c := range t.Columns {
		b += int64(len(c.Nums))*8 + int64(len(c.Codes))*4
	}
	return b
}

// ErrNoRows is returned by operations that require a non-empty table.
var ErrNoRows = errors.New("dataset: table has no rows")
