package dataset

import (
	"math/rand"
	"testing"
)

func reorderFixture(t *testing.T, n int) *Table {
	t.Helper()
	schema := MustSchema([]Field{
		{Name: "cat", Kind: Nominal},
		{Name: "val", Kind: Quantitative},
	})
	b := NewBuilder("fix", schema, n)
	cats := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		b.AppendString(0, cats[i%len(cats)])
		b.AppendNum(1, float64(i)*1.5-10)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randPerm(rng *rand.Rand, n int) []uint32 {
	perm := make([]uint32, n)
	for i, p := range rng.Perm(n) {
		perm[i] = uint32(p)
	}
	return perm
}

func TestReorderTableRowsMatchPermutation(t *testing.T) {
	tbl := reorderFixture(t, 1000)
	perm := randPerm(rand.New(rand.NewSource(3)), 1000)
	re, err := ReorderTable(tbl, perm)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumRows() != tbl.NumRows() {
		t.Fatalf("row count %d, want %d", re.NumRows(), tbl.NumRows())
	}
	cat, val := tbl.Column("cat"), tbl.Column("val")
	rcat, rval := re.Column("cat"), re.Column("val")
	if rcat.Dict != cat.Dict {
		t.Error("reordered nominal column must share the parent dictionary")
	}
	for i, p := range perm {
		if rcat.Codes[i] != cat.Codes[p] || rval.Nums[i] != val.Nums[p] {
			t.Fatalf("row %d does not match source row %d", i, p)
		}
	}
}

func TestReorderTableCarriesMinMax(t *testing.T) {
	tbl := reorderFixture(t, 500)
	lo, hi, ok := tbl.Column("val").MinMax()
	if !ok {
		t.Fatal("fixture bounds should be known")
	}
	perm := randPerm(rand.New(rand.NewSource(5)), 500)
	re, err := ReorderTable(tbl, perm)
	if err != nil {
		t.Fatal(err)
	}
	rlo, rhi, rok := re.Column("val").MinMax()
	if !rok || rlo != lo || rhi != hi {
		t.Errorf("bounds (%v,%v,%v), want (%v,%v,true)", rlo, rhi, rok, lo, hi)
	}
}

func TestReorderTableRejectsBadPermutations(t *testing.T) {
	tbl := reorderFixture(t, 10)
	for name, perm := range map[string][]uint32{
		"short":       make([]uint32, 5),
		"duplicate":   {0, 1, 2, 3, 4, 5, 6, 7, 8, 8},
		"outOfRange":  {0, 1, 2, 3, 4, 5, 6, 7, 8, 10},
		"allSameZero": make([]uint32, 10),
	} {
		if _, err := ReorderTable(tbl, perm); err == nil {
			t.Errorf("%s: invalid permutation accepted", name)
		}
	}
	// Identity must round-trip.
	id := make([]uint32, 10)
	for i := range id {
		id[i] = uint32(i)
	}
	re, err := ReorderTable(tbl, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if re.Column("val").Nums[i] != tbl.Column("val").Nums[i] {
			t.Fatal("identity reorder changed data")
		}
	}
}

func TestReorderFactKeepsDimensionJoins(t *testing.T) {
	dimSchema := MustSchema([]Field{{Name: "name", Kind: Nominal}})
	db2 := NewBuilder("dim", dimSchema, 3)
	for _, s := range []string{"a", "b", "c"} {
		db2.AppendString(0, s)
	}
	dim, err := db2.Build()
	if err != nil {
		t.Fatal(err)
	}
	factSchema := MustSchema([]Field{
		{Name: "fk", Kind: Quantitative},
		{Name: "v", Kind: Quantitative},
	})
	fb := NewBuilder("fact", factSchema, 30)
	for i := 0; i < 30; i++ {
		fb.AppendNum(0, float64(i%3))
		fb.AppendNum(1, float64(i))
	}
	fact, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := &Database{Fact: fact, Dimensions: []*Dimension{{Table: dim, FKColumn: "fk"}}}

	perm := randPerm(rand.New(rand.NewSource(9)), 30)
	re, err := db.ReorderFact(perm)
	if err != nil {
		t.Fatal(err)
	}
	if re.Dimensions[0].Table != dim {
		t.Error("dimension tables must be shared, not copied")
	}
	// The FK of reordered row i must still name the dimension row the source
	// row pointed at: v == i and fk == i%3 in the fixture ties them together.
	fkCol, vCol := re.Fact.Column("fk"), re.Fact.Column("v")
	for i := 0; i < 30; i++ {
		if fkCol.Nums[i] != float64(int(vCol.Nums[i])%3) {
			t.Fatalf("row %d: fk %v does not match carried value %v", i, fkCol.Nums[i], vCol.Nums[i])
		}
	}
}
