// Package dataset implements the columnar storage substrate shared by all
// IDEBench-Go engines: dictionary-encoded nominal columns, float64
// quantitative columns, immutable tables, star-schema databases
// (fact + dimension tables) and CSV import/export.
//
// All engines in internal/engine operate on the same dataset.Table; their
// differences — blocking vs. progressive vs. sampled execution — are
// execution-model differences, which is exactly the axis the paper measures.
package dataset

import (
	"errors"
	"fmt"
)

// Kind discriminates the two attribute types the benchmark distinguishes
// (paper Sec. 4.2/4.7: "nominal" vs "quantitative" bin ranges).
type Kind uint8

const (
	// Quantitative attributes hold numeric values binned by width.
	Quantitative Kind = iota
	// Nominal attributes hold categorical values binned by identity.
	Nominal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Quantitative:
		return "quantitative"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field describes one attribute of a table.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
	index  map[string]int
}

// NewSchema builds a schema and its name index. Duplicate field names are
// rejected.
func NewSchema(fields []Field) (*Schema, error) {
	s := &Schema{Fields: fields, index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, errors.New("dataset: empty field name")
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate field %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known field lists; it panics on
// invalid input.
func MustSchema(fields []Field) *Schema {
	s, err := NewSchema(fields)
	if err != nil {
		panic(err)
	}
	return s
}

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Field returns the named field.
func (s *Schema) Field(name string) (Field, bool) {
	i := s.FieldIndex(name)
	if i < 0 {
		return Field{}, false
	}
	return s.Fields[i], true
}

// Names returns the field names in schema order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.Fields) }
