package dataset

import (
	"bytes"
	"math"
	"testing"
)

func codecTestTable(t *testing.T) *Table {
	t.Helper()
	schema, err := NewSchema([]Field{
		{Name: "airline", Kind: Nominal},
		{Name: "delay", Kind: Quantitative},
		{Name: "distance", Kind: Quantitative},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("flights", schema, 8)
	airlines := []string{"AA", "UA", "DL", "AA", "WN", "UA", "AA", "DL"}
	for i, a := range airlines {
		b.AppendString(0, a)
		b.AppendNum(1, float64(i*3-5))
		b.AppendNum(2, 100.5*float64(i+1))
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTableCodecRoundTrip(t *testing.T) {
	orig := codecTestTable(t)
	got, err := DecodeTable(EncodeTable(orig))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != orig.Name || got.NumRows() != orig.NumRows() {
		t.Fatalf("got %q/%d rows, want %q/%d", got.Name, got.NumRows(), orig.Name, orig.NumRows())
	}
	if len(got.Columns) != len(orig.Columns) {
		t.Fatalf("got %d columns, want %d", len(got.Columns), len(orig.Columns))
	}
	for i, oc := range orig.Columns {
		gc := got.Columns[i]
		if gc.Field != oc.Field {
			t.Fatalf("column %d: field %+v, want %+v", i, gc.Field, oc.Field)
		}
		for r := 0; r < orig.NumRows(); r++ {
			if gc.ValueString(r) != oc.ValueString(r) {
				t.Fatalf("column %d row %d: %q != %q", i, r, gc.ValueString(r), oc.ValueString(r))
			}
		}
		glo, ghi, gok := gc.MinMax()
		olo, ohi, ook := oc.MinMax()
		if glo != olo || ghi != ohi || gok != ook {
			t.Fatalf("column %d bounds: (%v,%v,%v) want (%v,%v,%v)", i, glo, ghi, gok, olo, ohi, ook)
		}
	}
	// Decoded dictionaries must assign identical codes, not just identical
	// values: the WAL replay path interns batch values against them.
	for i, oc := range orig.Columns {
		if oc.Field.Kind != Nominal {
			continue
		}
		for _, v := range oc.Dict.Values() {
			oCode, _ := oc.Dict.Lookup(v)
			gCode, ok := got.Columns[i].Dict.Lookup(v)
			if !ok || gCode != oCode {
				t.Fatalf("column %d value %q: code %d/%v, want %d", i, v, gCode, ok, oCode)
			}
		}
	}
}

func TestTableCodecDeterministic(t *testing.T) {
	tb := codecTestTable(t)
	a := EncodeTable(tb)
	b := EncodeTable(tb)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same table differ")
	}
	// A decode/re-encode cycle must also be byte-stable — the checkpoint
	// determinism guarantee spans process restarts, not just repeated calls.
	dec, err := DecodeTable(a)
	if err != nil {
		t.Fatal(err)
	}
	if c := EncodeTable(dec); !bytes.Equal(a, c) {
		t.Fatal("decode/re-encode changed the bytes")
	}
}

func TestTableCodecPinsDictToView(t *testing.T) {
	// Regression: a checkpointed view's encoding must not change when
	// concurrent ingest grows the shared append-only dictionary after the
	// view was taken. EncodeTable used to serialize the live Dict.Values()
	// wholesale, so a checkpoint written mid-ingest could carry dictionary
	// entries from rows beyond its own watermark — breaking byte-identity
	// between two checkpoints of the same data version.
	tb := codecTestTable(t)
	before := EncodeTable(tb)

	// Simulate a later batch interning new categories into the shared dict,
	// exactly what ingest.Materialize does between checkpoint snapshot and
	// checkpoint write.
	dict := tb.Column("airline").Dict
	dict.Code("F9")
	dict.Code("NK")

	after := EncodeTable(tb)
	if !bytes.Equal(before, after) {
		t.Fatal("encoding of an unchanged view moved when the shared dictionary grew")
	}

	// The decoded dictionary is exactly the prefix the view references: the
	// post-view values are absent (WAL replay re-interns them), and every
	// referenced code still resolves to its original value.
	dec, err := DecodeTable(after)
	if err != nil {
		t.Fatal(err)
	}
	decDict := dec.Column("airline").Dict
	if _, ok := decDict.Lookup("F9"); ok {
		t.Fatal("decoded dictionary leaked a value interned after the view")
	}
	for r := 0; r < tb.NumRows(); r++ {
		if got, want := dec.Column("airline").ValueString(r), tb.Column("airline").ValueString(r); got != want {
			t.Fatalf("row %d: %q != %q", r, got, want)
		}
	}
	// And the pinned prefix re-encodes to the same bytes, so determinism
	// spans restarts too.
	if c := EncodeTable(dec); !bytes.Equal(after, c) {
		t.Fatal("decode/re-encode of the pinned view changed the bytes")
	}
}

func TestTableCodecEmptyAndNaN(t *testing.T) {
	schema, err := NewSchema([]Field{{Name: "x", Kind: Quantitative}})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("t", schema, 0)
	empty, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(EncodeTable(empty))
	if err != nil || got.NumRows() != 0 {
		t.Fatalf("empty table: rows=%d err=%v", got.NumRows(), err)
	}

	b2 := NewBuilder("t", schema, 2)
	b2.AppendNum(0, 1)
	b2.AppendNum(0, math.NaN())
	nt, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeTable(EncodeTable(nt))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got2.Columns[0].Nums[1]) {
		t.Fatal("NaN did not survive the round trip")
	}
	if _, _, ok := got2.Columns[0].MinMax(); ok {
		t.Fatal("NaN column bounds must decode as not-ok")
	}
}

func TestTableCodecCorruptInputs(t *testing.T) {
	valid := EncodeTable(codecTestTable(t))

	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(valid); n += 7 {
		if _, err := DecodeTable(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is rejected: a checkpoint segment is exactly one table.
	if _, err := DecodeTable(append(append([]byte(nil), valid...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	if _, err := DecodeTable(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	flip := append([]byte(nil), valid...)
	// The last 4 bytes of the nominal column's code array live right before
	// the first quantitative column payload; rather than compute offsets,
	// corrupt every aligned u32 in the body and require no panics.
	for off := len(tableMagic); off+4 <= len(flip); off += 4 {
		tmp := append([]byte(nil), flip...)
		tmp[off] ^= 0xA5
		tmp[off+3] ^= 0x5A
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decode panicked at offset %d: %v", off, p)
				}
			}()
			_, _ = DecodeTable(tmp)
		}()
	}
}
