package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestStatsQuantitative(t *testing.T) {
	tbl := buildSmallTable(t) // delays: 5, -2, 13.5, 0
	stats := Stats(tbl)
	if len(stats) != 2 {
		t.Fatalf("stats = %d columns", len(stats))
	}
	var delay ColumnStats
	for _, s := range stats {
		if s.Field.Name == "delay" {
			delay = s
		}
	}
	if delay.Min != -2 || delay.Max != 13.5 {
		t.Errorf("min/max = %v/%v", delay.Min, delay.Max)
	}
	wantMean := (5 - 2 + 13.5 + 0) / 4
	if math.Abs(delay.Mean-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", delay.Mean, wantMean)
	}
	if delay.Stddev <= 0 {
		t.Error("stddev should be positive")
	}
	if delay.Rows != 4 {
		t.Errorf("rows = %d", delay.Rows)
	}
}

func TestStatsNominal(t *testing.T) {
	tbl := buildSmallTable(t) // carriers: AA, UA, AA, DL
	var carrier ColumnStats
	for _, s := range Stats(tbl) {
		if s.Field.Name == "carrier" {
			carrier = s
		}
	}
	if carrier.Cardinality != 3 {
		t.Errorf("cardinality = %d, want 3", carrier.Cardinality)
	}
	if len(carrier.TopValues) != 3 {
		t.Fatalf("top values = %d", len(carrier.TopValues))
	}
	if carrier.TopValues[0].Value != "AA" || carrier.TopValues[0].Count != 2 {
		t.Errorf("top value = %+v", carrier.TopValues[0])
	}
	// Ties break alphabetically.
	if carrier.TopValues[1].Value != "DL" {
		t.Errorf("tie-break wrong: %+v", carrier.TopValues[1])
	}
}

func TestStatsTopValuesCapped(t *testing.T) {
	s := testSchema(t)
	b := NewBuilder("t", s, 10)
	for _, c := range []string{"a", "b", "c", "d", "e", "f", "g", "a", "a", "b"} {
		b.AppendString(0, c)
		b.AppendNum(1, 1)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var carrier ColumnStats
	for _, st := range Stats(tbl) {
		if st.Field.Name == "carrier" {
			carrier = st
		}
	}
	if carrier.Cardinality != 7 {
		t.Errorf("cardinality = %d", carrier.Cardinality)
	}
	if len(carrier.TopValues) != 5 {
		t.Errorf("top values should cap at 5, got %d", len(carrier.TopValues))
	}
}

func TestStatsEmptyTable(t *testing.T) {
	tbl, err := NewBuilder("empty", testSchema(t), 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := Stats(tbl)
	for _, s := range stats {
		if s.Rows != 0 {
			t.Error("empty table stats should have zero rows")
		}
	}
}

func TestRenderStats(t *testing.T) {
	tbl := buildSmallTable(t)
	var buf bytes.Buffer
	if err := RenderStats(&buf, Stats(tbl)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"column", "carrier", "delay", "AA(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSelectRows(t *testing.T) {
	tbl := buildSmallTable(t)
	sub, err := SelectRows(tbl, []uint32{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows() != 2 {
		t.Fatalf("rows = %d", sub.NumRows())
	}
	if sub.Column("carrier").ValueString(0) != "AA" || sub.Column("carrier").ValueString(1) != "AA" {
		t.Error("selected carriers wrong")
	}
	if sub.Column("delay").Nums[1] != 13.5 {
		t.Error("selected delays wrong")
	}
	// Dictionary is shared, not copied.
	if sub.Column("carrier").Dict != tbl.Column("carrier").Dict {
		t.Error("sample should share parent dictionary")
	}
	// Empty selection.
	empty, err := SelectRows(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Error("empty selection should yield empty table")
	}
}
