package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Field{
		{Name: "carrier", Kind: Nominal},
		{Name: "delay", Kind: Quantitative},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildSmallTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder("flights", testSchema(t), 4)
	for i, row := range []struct {
		carrier string
		delay   float64
	}{
		{"AA", 5}, {"UA", -2}, {"AA", 13.5}, {"DL", 0},
	} {
		_ = i
		b.AppendString(0, row.carrier)
		b.AppendNum(1, row.delay)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.FieldIndex("delay") != 1 {
		t.Error("FieldIndex(delay) != 1")
	}
	if s.FieldIndex("nope") != -1 {
		t.Error("missing field should return -1")
	}
	f, ok := s.Field("carrier")
	if !ok || f.Kind != Nominal {
		t.Error("Field(carrier) wrong")
	}
	if got := strings.Join(s.Names(), ","); got != "carrier,delay" {
		t.Errorf("Names = %q", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema([]Field{{Name: ""}}); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewSchema([]Field{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate name should error")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on duplicates")
		}
	}()
	MustSchema([]Field{{Name: "a"}, {Name: "a"}})
}

func TestKindString(t *testing.T) {
	if Quantitative.String() != "quantitative" || Nominal.String() != "nominal" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := buildSmallTable(t)
	if tbl.NumRows() != 4 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
	c := tbl.Column("carrier")
	if c == nil {
		t.Fatal("carrier column missing")
	}
	if c.Dict.Len() != 3 {
		t.Errorf("dict size = %d, want 3", c.Dict.Len())
	}
	if c.ValueString(0) != "AA" || c.ValueString(1) != "UA" {
		t.Error("ValueString wrong")
	}
	if tbl.Column("delay").ValueString(2) != "13.5" {
		t.Errorf("delay rendering: %q", tbl.Column("delay").ValueString(2))
	}
	if tbl.Column("delay").ValueString(3) != "0" {
		t.Errorf("integer rendering: %q", tbl.Column("delay").ValueString(3))
	}
	if tbl.Column("missing") != nil {
		t.Error("missing column should be nil")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("x")
	b := d.Code("y")
	if a == b {
		t.Error("distinct values share a code")
	}
	if d.Code("x") != a {
		t.Error("re-interning changed the code")
	}
	if v, ok := d.Lookup("y"); !ok || v != b {
		t.Error("Lookup failed")
	}
	if _, ok := d.Lookup("z"); ok {
		t.Error("Lookup of absent value succeeded")
	}
	if d.Value(99) != "<code:99>" {
		t.Error("out-of-range code should render a marker")
	}
	if len(d.Values()) != 2 {
		t.Error("Values length wrong")
	}
}

func TestNewTableValidation(t *testing.T) {
	s := testSchema(t)
	dict := NewDict()
	good := []*Column{
		{Field: s.Fields[0], Codes: []uint32{0}, Dict: dict},
		{Field: s.Fields[1], Nums: []float64{1}},
	}
	if _, err := NewTable("t", s, good); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	// Ragged columns.
	bad := []*Column{
		{Field: s.Fields[0], Codes: []uint32{0, 1}, Dict: dict},
		{Field: s.Fields[1], Nums: []float64{1}},
	}
	if _, err := NewTable("t", s, bad); err == nil {
		t.Error("ragged table accepted")
	}
	// Wrong column count.
	if _, err := NewTable("t", s, good[:1]); err == nil {
		t.Error("column count mismatch accepted")
	}
	// Nominal without dict.
	noDict := []*Column{
		{Field: s.Fields[0], Codes: []uint32{0}},
		{Field: s.Fields[1], Nums: []float64{1}},
	}
	if _, err := NewTable("t", s, noDict); err == nil {
		t.Error("nominal column without dict accepted")
	}
	// Field mismatch.
	swapped := []*Column{
		{Field: s.Fields[1], Nums: []float64{1}},
		{Field: s.Fields[0], Codes: []uint32{0}, Dict: dict},
	}
	if _, err := NewTable("t", s, swapped); err == nil {
		t.Error("field order mismatch accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	b := NewBuilder("empty", testSchema(t), 0)
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 {
		t.Errorf("empty table rows = %d", tbl.NumRows())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := buildSmallTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "flights", tbl.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), tbl.NumRows())
	}
	for i := 0; i < tbl.NumRows(); i++ {
		for j := range tbl.Columns {
			if tbl.Columns[j].ValueString(i) != got.Columns[j].ValueString(i) {
				t.Errorf("cell (%d,%d): %q != %q", i, j,
					tbl.Columns[j].ValueString(i), got.Columns[j].ValueString(i))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name, in string
	}{
		{"bad header count", "carrier\nAA\n"},
		{"bad header name", "carrier,wrong\nAA,1\n"},
		{"bad number", "carrier,delay\nAA,notanum\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "t", s); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// Property: CSV round trip preserves any generated table.
func TestCSVRoundTripProperty(t *testing.T) {
	s := testSchema(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		b := NewBuilder("t", s, n)
		carriers := []string{"AA", "UA", "DL", "WN"}
		for i := 0; i < n; i++ {
			b.AppendString(0, carriers[rng.Intn(len(carriers))])
			b.AppendNum(1, float64(rng.Intn(2000))/10-50)
		}
		tbl, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "t", s)
		if err != nil {
			return false
		}
		if got.NumRows() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if got.Column("carrier").ValueString(i) != tbl.Column("carrier").ValueString(i) {
				return false
			}
			if got.Column("delay").Nums[i] != tbl.Column("delay").Nums[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDatabaseResolveColumn(t *testing.T) {
	fact := buildSmallTable(t)
	db := &Database{Fact: fact}
	c, dim, fk, err := db.ResolveColumn("delay")
	if err != nil || dim != nil || fk != nil || c == nil {
		t.Error("fact column resolution failed")
	}
	if _, _, _, err := db.ResolveColumn("nope"); err == nil {
		t.Error("unknown column should error")
	}
	if db.IsNormalized() {
		t.Error("db without dimensions reported normalized")
	}
}

func TestDatabaseWithDimension(t *testing.T) {
	// Fact table with FK column; dimension with an attribute.
	factSchema := MustSchema([]Field{
		{Name: "carrier_fk", Kind: Quantitative},
		{Name: "delay", Kind: Quantitative},
	})
	fb := NewBuilder("fact", factSchema, 3)
	fb.AppendNum(0, 0)
	fb.AppendNum(1, 10)
	fb.AppendNum(0, 1)
	fb.AppendNum(1, 20)
	fb.AppendNum(0, 0)
	fb.AppendNum(1, 30)
	fact, err := fb.Build()
	if err != nil {
		t.Fatal(err)
	}
	dimSchema := MustSchema([]Field{{Name: "carrier_name", Kind: Nominal}})
	dbb := NewBuilder("carriers", dimSchema, 2)
	dbb.AppendString(0, "AA")
	dbb.AppendString(0, "UA")
	dimTbl, err := dbb.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := &Database{Fact: fact, Dimensions: []*Dimension{{Table: dimTbl, FKColumn: "carrier_fk"}}}
	if !db.IsNormalized() {
		t.Error("db with dimensions should be normalized")
	}
	c, dim, fk, err := db.ResolveColumn("carrier_name")
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || dim == nil || fk == nil {
		t.Error("dimension resolution incomplete")
	}
	if db.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}
	// Dimension with a bogus FK column.
	bad := &Database{Fact: fact, Dimensions: []*Dimension{{Table: dimTbl, FKColumn: "ghost"}}}
	if _, _, _, err := bad.ResolveColumn("carrier_name"); err == nil {
		t.Error("missing FK column should error")
	}
}

func TestBuilderSharedDict(t *testing.T) {
	s := testSchema(t)
	parent := NewDict()
	parent.Code("AA")
	parent.Code("UA")
	b := NewBuilder("child", s, 1)
	b.SetDict(0, parent)
	b.AppendCode(0, 1)
	b.AppendNum(1, 7)
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Column("carrier").ValueString(0) != "UA" {
		t.Error("shared dictionary codes do not resolve")
	}
	if b.Dict(0) != parent {
		t.Error("Dict accessor should return shared dict")
	}
}
