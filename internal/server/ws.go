// Minimal RFC 6455 WebSocket transport. The repo is dependency-free by
// policy, so the serving layer carries its own framing: text messages,
// client-to-server masking, ping/pong keepalive and close handshake — the
// subset the idebench wire protocol needs, not a general-purpose library.
package server

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// wsGUID is the fixed RFC 6455 handshake GUID.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// maxMessageBytes bounds a single WebSocket message; a snapshot for a 2D
// binned visualization is a few hundred KB at most, so anything beyond this
// is a protocol violation, not a big result.
const maxMessageBytes = 64 << 20

// WebSocket opcodes (RFC 6455 Sec. 5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// ErrWSClosed is returned by reads and writes after the connection closed
// (either peer sent a close frame, or Close was called locally).
var ErrWSClosed = errors.New("server: websocket closed")

// Close codes the idebench protocol attaches to close frames so a peer can
// tell WHY it was hung up on, not just that it was. 1001 is the RFC 6455
// "going away" code; the 4xxx range is reserved for application use.
const (
	// CloseGoingAway: the server is draining and will not come back on this
	// address; reconnecting is pointless (terminal).
	CloseGoingAway uint16 = 1001
	// CloseIdleTimeout: the peer failed the read-side liveness deadline (no
	// frame, ping or pong inside Options.IdleTimeout). The connection state
	// is gone but the server is healthy — reconnecting is reasonable.
	CloseIdleTimeout uint16 = 4408
	// CloseTryLater: the server refused the connection for capacity reasons
	// after the upgrade already succeeded (the connection cap filled during
	// the handshake). Transient — reconnecting with backoff is reasonable.
	CloseTryLater uint16 = 4503
	// CloseOverflow: the peer queued final frames faster than it read them
	// for longer than the write timeout — a protocol abuse, not a transient
	// condition (terminal).
	CloseOverflow uint16 = 4413
)

// CloseError is the error ReadMessage returns when the peer's close frame
// carried a status code, preserving the code and reason for classification
// (retryable vs terminal — see IsRetryable).
type CloseError struct {
	Code   uint16
	Reason string
}

func (e *CloseError) Error() string {
	if e.Reason == "" {
		return fmt.Sprintf("server: websocket closed by peer (code %d)", e.Code)
	}
	return fmt.Sprintf("server: websocket closed by peer (code %d: %s)", e.Code, e.Reason)
}

// WSConn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized and may come from any
// goroutine (the connection writer, and the reader answering pings).
type WSConn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client side masks outgoing frames
	// idle, when set, is re-armed as a read deadline before every frame so
	// any inbound traffic (data, ping, pong) proves liveness.
	idle time.Duration

	wmu    sync.Mutex
	closed bool
}

// ReadMessage returns the next complete text/binary message payload,
// transparently answering pings and completing the close handshake.
func (c *WSConn) ReadMessage() ([]byte, error) {
	var msg []byte
	for {
		fin, opcode, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// Unsolicited pongs are legal no-ops.
		case opClose:
			c.writeClose()
			if len(payload) >= 2 {
				code := binary.BigEndian.Uint16(payload[:2])
				return nil, &CloseError{Code: code, Reason: string(payload[2:])}
			}
			return nil, ErrWSClosed
		case opText, opBinary, opContinuation:
			msg = append(msg, payload...)
			if len(msg) > maxMessageBytes {
				return nil, fmt.Errorf("server: websocket message exceeds %d bytes", maxMessageBytes)
			}
			if fin {
				return msg, nil
			}
		default:
			return nil, fmt.Errorf("server: unknown websocket opcode %#x", opcode)
		}
	}
}

// WriteMessage sends one text message as a single unfragmented frame.
func (c *WSConn) WriteMessage(payload []byte) error {
	return c.writeFrame(opText, payload)
}

// WritePing sends a ping frame; the peer's ReadMessage answers with a pong
// transparently, so any live peer resets its sender's idle deadline.
func (c *WSConn) WritePing() error {
	return c.writeFrame(opPing, nil)
}

// SetIdleTimeout arms read-side liveness: every frame read (including the
// pongs elicited by WritePing) must arrive within d of the previous one or
// ReadMessage fails with a timeout error. 0 disables.
func (c *WSConn) SetIdleTimeout(d time.Duration) { c.idle = d }

// CloseWith performs the closing handshake carrying a status code and reason
// (RFC 6455 Sec. 5.5.1), then tears the connection down. Idempotent with
// Close: whichever runs first sends its close frame.
func (c *WSConn) CloseWith(code uint16, reason string) error {
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	c.wmu.Lock()
	if !c.closed {
		c.closed = true
		payload := make([]byte, 2, 2+len(reason))
		binary.BigEndian.PutUint16(payload, code)
		// Close reasons are capped at 123 bytes by the control-frame limit.
		if len(reason) > 123 {
			reason = reason[:123]
		}
		payload = append(payload, reason...)
		_ = c.writeFrameLocked(opClose, payload)
	}
	c.wmu.Unlock()
	return c.conn.Close()
}

// Close performs the closing handshake from this side and tears the
// underlying connection down. Idempotent.
func (c *WSConn) Close() error {
	// Bound the wait for wmu: a peer that stopped reading can leave another
	// goroutine stalled inside conn.Write holding the lock, and Close must
	// not deadlock behind it (server drains rely on Close completing). The
	// deadline unblocks any such write within a second; the close frame is
	// best-effort either way.
	c.conn.SetWriteDeadline(time.Now().Add(time.Second))
	c.writeClose()
	return c.conn.Close()
}

// SetReadDeadline bounds the next ReadMessage.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline bounds subsequent writes. The server sets one per frame
// so a client that stops reading cannot park a writer goroutine forever.
func (c *WSConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// writeClose sends the close frame once.
func (c *WSConn) writeClose() {
	c.wmu.Lock()
	if !c.closed {
		c.closed = true
		// Best-effort: the peer may already be gone.
		_ = c.writeFrameLocked(opClose, nil)
	}
	c.wmu.Unlock()
}

// readFrame reads one frame, unmasking if needed.
func (c *WSConn) readFrame() (fin bool, opcode byte, payload []byte, err error) {
	if c.idle > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.idle))
	}
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, errors.New("server: websocket RSV bits set without extension")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxMessageBytes {
		return false, 0, nil, fmt.Errorf("server: websocket frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return fin, opcode, payload, nil
}

// writeFrame sends one complete frame, masking when this is the client side.
func (c *WSConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrWSClosed
	}
	return c.writeFrameLocked(opcode, payload)
}

func (c *WSConn) writeFrameLocked(opcode byte, payload []byte) error {
	// Header and payload go out in ONE Write: two small writes per frame
	// would interact with Nagle + delayed ACK into ~40ms stalls per frame,
	// which is fatal for a protocol whose deadlines are single-digit ms.
	buf := make([]byte, 0, 14+len(payload))
	buf = append(buf, 0x80|opcode)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch n := len(payload); {
	case n < 126:
		buf = append(buf, maskBit|byte(n))
	case n <= 0xFFFF:
		buf = append(buf, maskBit|126, byte(n>>8), byte(n))
	default:
		buf = append(buf, maskBit|127)
		buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	}
	if c.client {
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		buf = append(buf, mask[:]...)
		off := len(buf)
		buf = append(buf, payload...)
		for i := off; i < len(buf); i++ {
			buf[i] ^= mask[(i-off)&3]
		}
	} else {
		buf = append(buf, payload...)
	}
	_, err := c.conn.Write(buf)
	return err
}

// setNoDelay disables Nagle on TCP transports: snapshot frames are small
// and latency-critical (the driver's time requirements are milliseconds).
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// wsAccept computes the Sec-WebSocket-Accept value for a handshake key.
func wsAccept(key string) string {
	sum := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(sum[:])
}

// upgradeWS performs the server half of the opening handshake and hijacks
// the HTTP connection. On failure it has already written an HTTP error.
func upgradeWS(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket upgrade required", http.StatusUpgradeRequired)
		return nil, errors.New("server: not a websocket upgrade request")
	}
	if r.Header.Get("Sec-WebSocket-Version") != "13" {
		http.Error(w, "unsupported websocket version", http.StatusBadRequest)
		return nil, errors.New("server: unsupported websocket version")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("server: missing websocket key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, errors.New("server: response writer is not hijackable")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("server: hijack: %w", err)
	}
	setNoDelay(conn)
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake response: %w", err)
	}
	return &WSConn{conn: conn, br: rw.Reader}, nil
}

// rejectReasonHeader names the handshake-rejection reason the server
// attaches to pre-upgrade 503s, so clients can tell a transient full house
// (retryable, with a Retry-After hint) from a terminal drain.
const rejectReasonHeader = "X-Idebench-Reason"

// Handshake-rejection reasons.
const (
	// ReasonOverloaded: the connection cap is reached; retry after the hint.
	ReasonOverloaded = "overloaded"
	// ReasonDraining: the server is shutting down; do not retry.
	ReasonDraining = "draining"
)

// HandshakeError is a WebSocket upgrade rejected at the HTTP layer, carrying
// the status, the server's stated reason, and its Retry-After hint (0 when
// absent — a terminal rejection).
type HandshakeError struct {
	Status     int
	Reason     string
	RetryAfter time.Duration
}

func (e *HandshakeError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("server: handshake rejected: %d (%s)", e.Status, e.Reason)
	}
	return fmt.Sprintf("server: handshake rejected: %d", e.Status)
}

// headerContainsToken reports whether a comma-separated header contains the
// token (case-insensitive); "Connection: keep-alive, Upgrade" must match.
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// dialWS performs the client half of the opening handshake against a
// ws://host:port/path URL.
func dialWS(rawURL string, timeout time.Duration) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("server: dial %q: %w", rawURL, err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("server: dial %q: only ws:// is supported", rawURL)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Host, "80")
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", host, err)
	}
	setNoDelay(conn)
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(keyBytes[:])
	path := u.Path
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake request: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: handshake response: %w", err)
	}
	// 101 responses have no body; anything buffered past the header block is
	// already WebSocket framing and stays in br.
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		he := &HandshakeError{Status: resp.StatusCode, Reason: resp.Header.Get(rejectReasonHeader)}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			var secs int
			if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil && secs >= 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, he
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != wsAccept(key) {
		conn.Close()
		return nil, fmt.Errorf("server: handshake accept mismatch %q", got)
	}
	return &WSConn{conn: conn, br: br, client: true}, nil
}
