package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// testRows keeps end-to-end fixtures fast while leaving progressive queries
// enough rows to stream intermediate snapshots before completing.
const testRows = 40_000

type fixture struct {
	db    *dataset.Database
	eng   *progressive.Engine
	srv   *Server
	hsrv  *httptest.Server
	addr  string
	gt    *groundtruth.Cache
	flows []*workflow.Workflow
}

// newFixture prepares a progressive engine on a small generated dataset and
// serves it on a real loopback TCP listener.
func newFixture(t *testing.T, opts Options) *fixture {
	return newFixtureRows(t, opts, testRows)
}

func newFixtureRows(t *testing.T, opts Options, rows int) *fixture {
	t.Helper()
	db, err := core.BuildData(rows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := progressive.New(progressive.Config{})
	if err := eng.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	opts.Rows = int64(db.Fact.NumRows())
	opts.Seed = 1
	if opts.PollInterval == 0 {
		// Stream aggressively in tests so even fast scans yield intermediates.
		opts.PollInterval = 100 * time.Microsecond
	}
	srv := New(eng, opts)
	hsrv := httptest.NewServer(srv)
	t.Cleanup(hsrv.Close)

	all, err := core.GenerateWorkflows(db, 2, 6, 101)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		db:    db,
		eng:   eng,
		srv:   srv,
		hsrv:  hsrv,
		addr:  strings.TrimPrefix(hsrv.URL, "http://"),
		gt:    groundtruth.New(db),
		flows: all,
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteReplaySingleUser replays one workflow through driver.Runner over
// the WebSocket client — the driver is byte-for-byte the in-process one; only
// the engine behind it is remote.
func TestRemoteReplaySingleUser(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if rem.Name() != "progressive" {
		t.Fatalf("remote name %q, want progressive", rem.Name())
	}
	if rem.Rows() != int64(f.db.Fact.NumRows()) {
		t.Fatalf("remote rows %d, want %d", rem.Rows(), f.db.Fact.NumRows())
	}
	if rem.Seed() != 1 {
		t.Fatalf("remote seed %d, want 1", rem.Seed())
	}
	// Prepare is the ground-truth handshake: matching dataset passes, a
	// mismatched seed is refused before any replay could record garbage.
	if err := rem.Prepare(f.db, engine.Options{Seed: 1}); err != nil {
		t.Fatalf("matching Prepare: %v", err)
	}
	if err := rem.Prepare(f.db, engine.Options{Seed: 2}); err == nil {
		t.Fatal("mismatched seed accepted")
	}

	r := driver.New(rem, f.gt, driver.Config{
		TimeRequirement: 2 * time.Second, // the assertion is 0 violations; queries finishing early cost nothing
		ThinkTime:       time.Millisecond,
		DataSizeLabel:   "40k",
	})
	recs, err := r.RunWorkflow(f.flows[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range recs {
		if rec.Metrics.TRViolated {
			t.Errorf("query %s violated the TR over loopback", rec.VizName)
		}
	}
	if got := rem.Stats().Final.Load(); got < int64(len(recs)) {
		t.Errorf("%d final frames for %d queries", got, len(recs))
	}
	if rem.Stats().Intermediate.Load() == 0 {
		t.Error("no intermediate snapshot frames streamed")
	}
}

// TestRemoteMultiRunner8Users is the acceptance scenario: driver.MultiRunner
// replays 8 workflows as 8 concurrent users through 8 WebSocket sessions
// against one served progressive engine, with zero deadline violations.
func TestRemoteMultiRunner8Users(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	m := driver.NewMulti(rem, f.gt, driver.MultiConfig{
		Config: driver.Config{
			TimeRequirement: 3 * time.Second, // the assertion is 0 violations, so leave CI headroom
			ThinkTime:       time.Millisecond,
			DataSizeLabel:   "40k",
		},
		Users: 8,
	})
	res, err := m.Run(f.flows[:8])
	if err != nil {
		t.Fatal(err)
	}
	if res.Users != 8 {
		t.Fatalf("ran %d users, want 8", res.Users)
	}
	violations := 0
	for _, rec := range res.Records {
		if rec.Metrics.TRViolated {
			violations++
		}
	}
	if violations != 0 {
		t.Errorf("%d deadline violations across %d queries, want 0", violations, len(res.Records))
	}
	// 8 users + the hello probe = 9 sessions.
	if got := rem.Stats().Sessions.Load(); got != 9 {
		t.Errorf("%d sessions opened, want 9", got)
	}
	if rem.Stats().Intermediate.Load() == 0 {
		t.Error("no intermediate snapshot frames streamed")
	}
	waitFor(t, 5*time.Second, "sessions to close", func() bool { return f.srv.ConnCount() == 1 })
}

// pumpQueries issues queries with distinct signatures (each gets a fresh
// shared-scan consumer) until stop closes, returning every handle obtained.
// Vectorized scans over a small test table finish in well under a
// millisecond, so a single query cannot reliably be caught mid-flight; a
// stream of them guarantees the scan is busy when the test acts.
func pumpQueries(t *testing.T, sess *RemoteSession, base *query.Query, stop <-chan struct{}) func() []engine.Handle {
	t.Helper()
	var mu sync.Mutex
	var handles []engine.Handle
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := *base
			// A never-matching IN predicate on the bin field makes each
			// query's signature unique without changing schema validity.
			q.Filter = base.Filter.And(query.Predicate{
				Field: base.Bins[0].Field, Op: query.OpIn,
				Values: []string{fmt.Sprintf("pump-%d", i)},
			})
			h, err := sess.StartQuery(&q)
			if err != nil {
				return // session closed under us: expected during teardown
			}
			mu.Lock()
			handles = append(handles, h)
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return func() []engine.Handle {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return handles
	}
}

// TestDisconnectReleasesSharedScanConsumer is the lifecycle guarantee: a
// client vanishing mid-progressive-query must release its session and
// detach its consumers from the shared scan, with no reaper involved.
func TestDisconnectReleasesSharedScanConsumer(t *testing.T) {
	f := newFixture(t, Options{PollInterval: time.Millisecond})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	sess := rem.OpenSession().(*RemoteSession)
	stop := make(chan struct{})
	collect := pumpQueries(t, sess, firstQuery(t, f.flows[0]), stop)

	// Wait until queries are demonstrably attached to the scan, then drop
	// the connection abruptly mid-stream — no cancel, no workflow_end.
	waitFor(t, 10*time.Second, "consumers to attach", func() bool { return f.eng.ActiveScanConsumers() > 0 })
	sess.Close()
	close(stop)
	handles := collect()

	waitFor(t, 10*time.Second, "consumers to detach", func() bool { return f.eng.ActiveScanConsumers() == 0 })
	waitFor(t, 10*time.Second, "server to forget the connection", func() bool { return f.srv.ConnCount() == 1 })
	// Every local handle must have completed too (failed handles close
	// Done), so no driver goroutine would block on the dead session.
	for _, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("handle still pending after disconnect")
		}
	}
}

// firstQuery extracts the first query a workflow issues.
func firstQuery(t *testing.T, w *workflow.Workflow) *query.Query {
	t.Helper()
	g := workflow.NewGraph()
	for _, in := range w.Interactions {
		eff, err := g.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(eff.Queries) > 0 {
			return eff.Queries[0]
		}
	}
	t.Fatal("workflow issued no queries")
	return nil
}

// TestDrainCompletesInFlightFinals asserts Shutdown semantics: queries in
// flight when the drain starts still deliver their final snapshot, and new
// queries are refused.
func TestDrainCompletesInFlightFinals(t *testing.T) {
	f := newFixture(t, Options{PollInterval: time.Millisecond})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	stop := make(chan struct{})
	collect := pumpQueries(t, sess, firstQuery(t, f.flows[0]), stop)
	// Only queries the server has actually started are "in flight"; a drain
	// beginning before a query frame is read refuses it instead.
	waitFor(t, 10*time.Second, "queries to attach", func() bool { return f.eng.ActiveScanConsumers() > 0 })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := f.srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	wg.Wait()
	close(stop)
	handles := collect()

	// Every started query delivered a final; pump queries refused during the
	// drain completed with nil snapshots. At least one must have run to
	// completion (the one the attach wait observed).
	complete := 0
	for _, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("handle still pending after drain")
		}
		if snap := h.Snapshot(); snap != nil && snap.Complete {
			complete++
		}
	}
	if complete == 0 {
		t.Error("no in-flight query delivered a complete final snapshot during drain")
	}
	if got := rem.Stats().Final.Load(); got == 0 {
		t.Error("no final frame delivered during drain")
	}

	// A drained server refuses new work: fresh queries on a live session
	// fail (connection was closed server-side).
	waitFor(t, 10*time.Second, "connections to close", func() bool { return f.srv.ConnCount() == 0 })
}

// TestMaxConns asserts the connection limit rejects the excess session
// before it touches the engine.
func TestMaxConns(t *testing.T) {
	f := newFixture(t, Options{MaxConns: 1})
	rem, err := NewRemote(f.addr) // uses the single slot
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession()
	defer sess.Close()
	if _, err := sess.StartQuery(firstQuery(t, f.flows[0])); err == nil {
		t.Fatal("session over the connection limit started a query")
	}
}

// TestHealthz covers the health endpoint shape.
func TestHealthz(t *testing.T) {
	f := newFixture(t, Options{})
	resp, err := http.Get(f.hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Engine   string `json:"engine"`
		Rows     int64  `json:"rows"`
		Version  int    `json:"version"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Engine != "progressive" || h.Rows != int64(f.db.Fact.NumRows()) || h.Version != ProtoVersion || h.Draining {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestServerErrorFrame asserts a bad query produces an error frame scoped to
// its id, not a dropped connection: later queries on the same session work.
func TestServerErrorFrame(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()

	bad := firstQuery(t, f.flows[0])
	badCopy := *bad
	badCopy.Table = "no_such_table"
	h, err := sess.StartQuery(&badCopy)
	if err != nil {
		t.Fatalf("local validation rejected a structurally valid query: %v", err)
	}
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("error frame never completed the handle")
	}
	if h.Snapshot() != nil {
		t.Error("failed query delivered a snapshot")
	}
	if rem.Stats().Errors.Load() == 0 {
		t.Error("no error frame counted")
	}
	if sess.Err() == nil || !strings.Contains(sess.Err().Error(), "unknown table") {
		t.Errorf("session error = %v, want unknown table", sess.Err())
	}

	// A session that reported a per-query error refuses further queries so a
	// replay fails loudly instead of recording garbage.
	if _, err := sess.StartQuery(bad); err == nil {
		t.Error("errored session accepted another query")
	}
}
