package server

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/faultnet"
)

// deadAddr returns a loopback address nothing listens on: dials get an
// immediate connection-refused (a retryable net.Error), exactly what a
// kill -9'd primary looks like to a client.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// terminalAddr returns the address of a server whose /ws handshake fails
// terminally (HTTP 404 — not a capacity rejection, retrying cannot help).
func terminalAddr(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestDialNextAddressOnTerminalFailure: a terminal handshake failure at one
// address must advance the rotation instead of giving up, because the same
// tier is reachable at the alternates; only a full lap of terminal failures
// is fatal.
func TestDialNextAddressOnTerminalFailure(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemoteWithOptions(terminalAddr(t), RemoteOptions{
		Reconnect: true,
		Addrs:     []string{f.addr},
	})
	if err != nil {
		t.Fatalf("dial with live alternate: %v", err)
	}
	defer rem.Close()
	if rem.Name() != "progressive" {
		t.Fatalf("connected engine %q, want progressive", rem.Name())
	}
	if got := rem.currentAddr(); got != f.addr {
		t.Errorf("rotation settled on %s, want the live alternate %s", got, f.addr)
	}
}

// TestDialTerminalFailureWithoutAlternates preserves the single-address
// contract: a terminal failure returns at once, no retries.
func TestDialTerminalFailureWithoutAlternates(t *testing.T) {
	start := time.Now()
	if _, err := NewRemoteWithOptions(terminalAddr(t), RemoteOptions{Reconnect: true}); err == nil {
		t.Fatal("terminal handshake failure did not fail the dial")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("terminal single-address dial took %v; should not have retried", d)
	}
}

// TestDialNextAddressOnRefusedConnection: a dead primary (connection
// refused) with a live standby in the address list must connect to the
// standby under the Reconnect policy.
func TestDialNextAddressOnRefusedConnection(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemoteWithOptions(deadAddr(t), RemoteOptions{
		Reconnect: true,
		Addrs:     []string{f.addr},
	})
	if err != nil {
		t.Fatalf("dial with dead primary, live standby: %v", err)
	}
	defer rem.Close()
	if rem.Rows() != testRows {
		t.Fatalf("standby hello rows = %d, want %d", rem.Rows(), testRows)
	}
}

// TestHelloPeersMergeIntoRotation: a client that dialed only the primary
// learns the standbys from the hello Peers list.
func TestHelloPeersMergeIntoRotation(t *testing.T) {
	standby := "127.0.0.1:39999"
	f := newFixture(t, Options{Peers: []string{standby}})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	addrs := rem.Addrs()
	if len(addrs) != 2 || addrs[0] != f.addr || addrs[1] != standby {
		t.Fatalf("rotation after hello = %v, want [%s %s]", addrs, f.addr, standby)
	}
	// Re-learning the same peers must not duplicate entries.
	rem.mergePeers([]string{standby, f.addr, ""})
	if got := rem.Addrs(); len(got) != 2 {
		t.Fatalf("rotation grew duplicates: %v", got)
	}
}

// TestQueryDuringReconnectWindow pins down the frame-loss race of
// coordinator failover: a query started AFTER the connection died but
// BEFORE the redial lands must go out on the replacement connection. The
// old send path wrote to whatever ws pointed at — the dead socket — where
// the write either errored (RST) or, worse, succeeded silently into the
// kernel buffer (FIN), orphaning the handle forever. Senders now wait out
// the reconnect, so the query must neither fail nor vanish.
func TestQueryDuringReconnectWindow(t *testing.T) {
	primary := newFixture(t, Options{})
	standby := newFixture(t, Options{})

	px, err := faultnet.New(primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	// The standby's rotation slot points at a port nothing listens on YET:
	// the redial loop churns through refused connections on every address
	// while the test holds the session in the reconnect window.
	lateAddr := deadAddr(t)

	rem, err := NewRemoteWithOptions(px.Addr(), RemoteOptions{
		Reconnect:  true,
		MaxRetries: 50,
		BackoffMax: 200 * time.Millisecond,
		Addrs:      []string{lateAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	h, err := rem.StartQuery(firstQuery(t, primary.flows[0]))
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done()
	if h.Snapshot() == nil {
		t.Fatal("primary query returned no snapshot")
	}

	// Kill the primary and give the read loop time to observe the loss and
	// enter the redial loop; with both addresses refusing, the session is
	// now pinned mid-reconnect.
	px.ResetAll()
	px.Close()
	time.Sleep(250 * time.Millisecond)

	type started struct {
		h   engine.Handle
		err error
	}
	ch := make(chan started, 1)
	go func() {
		h, err := rem.StartQuery(firstQuery(t, standby.flows[0]))
		ch <- started{h, err}
	}()
	select {
	case s := <-ch:
		// Nothing is listening anywhere, so an immediate return means the
		// frame went into (or bounced off) the dead connection.
		t.Fatalf("mid-reconnect StartQuery returned early: handle=%v err=%v", s.h, s.err)
	case <-time.After(300 * time.Millisecond):
	}

	// The standby comes up at the reserved address (a plain forwarder to a
	// live fixture); the redial lands, and the blocked query goes out on
	// the NEW connection.
	ln, err := net.Listen("tcp", lateAddr)
	if err != nil {
		t.Fatalf("binding late standby address: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", standby.addr)
			if err != nil {
				c.Close()
				continue
			}
			go func() { io.Copy(up, c); up.Close() }() //nolint:errcheck
			go func() { io.Copy(c, up); c.Close() }()  //nolint:errcheck
		}
	}()

	var s started
	select {
	case s = <-ch:
	case <-time.After(15 * time.Second):
		t.Fatal("StartQuery still blocked after the standby came up")
	}
	if s.err != nil {
		t.Fatalf("query started mid-reconnect failed: %v", s.err)
	}
	select {
	case <-s.h.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("query started mid-reconnect never completed on the standby")
	}
	if snap := s.h.Snapshot(); snap == nil || !snap.Complete {
		t.Fatalf("mid-reconnect query snapshot = %+v, want complete", snap)
	}
	if rem.Stats().Reconnects.Load() == 0 {
		t.Fatal("session never recorded the reconnect")
	}
}

// TestReconnectToStandbyMidReplay is the client half of coordinator
// failover: a session whose server dies mid-replay redials through the
// address rotation, lands on the standby, and the shared watermark never
// moves backwards even though the standby's hello states fewer rows than
// the client had already confirmed.
func TestReconnectToStandbyMidReplay(t *testing.T) {
	primary := newFixture(t, Options{})
	// The standby intentionally states a LOWER row count in its hello: the
	// monotone watermark (casMax) must keep the higher confirmed version.
	standby := newFixtureRows(t, Options{}, testRows/2)

	// The primary is reached through a fault-injection proxy so the test can
	// kill it — listener and live connections both — the way kill -9 does;
	// httptest's Close leaves hijacked WebSocket connections alive.
	px, err := faultnet.New(primary.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	rem, err := NewRemoteWithOptions(px.Addr(), RemoteOptions{
		Reconnect: true,
		Addrs:     []string{standby.addr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()

	// Replay against the primary first so the session is demonstrably live.
	h, err := sess.StartQuery(firstQuery(t, primary.flows[0]))
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done()
	if h.Snapshot() == nil {
		t.Fatal("primary query returned no snapshot")
	}
	wmBefore := rem.Watermark()
	if wmBefore != testRows {
		t.Fatalf("watermark before failover = %d, want %d", wmBefore, testRows)
	}

	// Kill the primary: the proxy resets every live connection and stops
	// accepting, so redials of the primary address get connection-refused.
	px.ResetAll()
	px.Close()

	// The session's read loop sees the loss, redials through the rotation
	// and lands on the standby.
	waitFor(t, 15*time.Second, "session to reconnect to the standby", func() bool {
		return rem.Stats().Reconnects.Load() >= 1
	})
	if got := rem.Watermark(); got < wmBefore {
		t.Errorf("watermark moved backwards across failover: %d -> %d", wmBefore, got)
	}

	// The replay continues on the standby: a fresh query on the SAME session
	// completes against the standby's engine.
	h2, err := sess.StartQuery(firstQuery(t, standby.flows[0]))
	if err != nil {
		t.Fatalf("query after failover: %v", err)
	}
	select {
	case <-h2.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("post-failover query never completed")
	}
	if snap := h2.Snapshot(); snap == nil || !snap.Complete {
		t.Fatalf("post-failover query snapshot = %+v, want complete", h2.Snapshot())
	}
}
