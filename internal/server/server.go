// Package server exposes a prepared engine.Engine over the network: an HTTP
// endpoint that upgrades to WebSocket, binds one engine.Session per
// connection, and streams progressive result snapshots as they land.
//
// # Session-per-connection
//
// Each WebSocket connection is one simulated analyst: the handler opens an
// engine session on accept and closes it on disconnect, so the server-side
// resource lifetime is exactly the connection lifetime — a vanished client
// releases its shared-scan consumers without any reaper.
//
// # Streaming with backpressure
//
// A per-query watcher polls the engine handle and enqueues snapshot frames
// into a per-connection outbox with drop-intermediate, always-deliver-final
// semantics: an unsent intermediate snapshot is overwritten by the next one
// (the newer snapshot strictly supersedes it — progressive results are
// monotone in rows seen), while final frames queue FIFO and are never
// dropped. A slow client therefore sees fewer, fresher intermediates and
// every final, and never stalls the engine's shared scan: watchers swap a
// pointer under a mutex instead of blocking on the socket. A client that
// stops reading entirely is bounded the other way — each frame write
// carries a deadline (Options.WriteTimeout) and the final backlog is
// capped, so a dead peer is disconnected and its session released instead
// of accumulating results indefinitely.
//
// # Lifecycle
//
// Drain (SIGTERM) stops accepting connections and queries, lets in-flight
// queries publish their final frames, flushes outboxes, then closes. The
// connection count is capped by Options.MaxConns; excess upgrades are
// rejected with 503 before any session is opened.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"idebench/internal/engine"
	"idebench/internal/ingest"
)

// Options tunes the serving layer.
type Options struct {
	// MaxConns caps concurrent WebSocket connections (= engine sessions);
	// 0 means DefaultMaxConns.
	MaxConns int
	// PollInterval is the watcher's snapshot poll period — the granularity
	// of intermediate frames. 0 means DefaultPollInterval.
	PollInterval time.Duration
	// Rows is the prepared fact-table size, stated in the hello frame so
	// clients can sanity-check they built the matching ground truth.
	Rows int64
	// Seed is the dataset seed, stated in the hello frame for the same
	// ground-truth check (0 = unknown, clients skip the check).
	Seed int64
	// WriteTimeout bounds each frame write; a client that stops reading is
	// disconnected (session released) instead of parking the writer
	// goroutine and accumulating final frames forever. 0 means
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Apply handles client ingest frames: it applies the batch to the
	// served engine and returns the post-apply watermark, which the server
	// then broadcasts to every live session. nil (an engine without the
	// append capability) rejects ingest frames with an error frame.
	Apply func(b *ingest.Batch) (int64, error)
	// MaxInflight caps concurrently executing queries across every
	// connection. Arrivals beyond it are refused with an explicit "reject"
	// frame carrying a retry hint — admission control, so the queries the
	// server does run keep their latency under overload instead of all of
	// them missing their deadlines together. 0 means DefaultMaxInflight.
	MaxInflight int
	// MaxInflightPerConn caps one connection's concurrent queries — fairness
	// on the shared scan: a single session blasting queries is rejected at
	// this bound while everyone else still fits under MaxInflight. 0 means
	// DefaultMaxInflightPerConn.
	MaxInflightPerConn int
	// RetryHint is the backoff the server suggests on retryable rejections.
	// 0 means DefaultRetryHint.
	RetryHint time.Duration
	// LateFactor controls deadline-aware shedding: a query whose client
	// stated a deadline (ClientMsg.DeadlineMS) and that is still running
	// after LateFactor multiples of it is cancelled, its partial final
	// marked Shed — the client snapshotted at the deadline anyway, so work
	// this late only steals scan capacity from queries that can still make
	// theirs. 0 means DefaultLateFactor; negative disables.
	LateFactor float64
	// PingInterval is how often the server pings each connection to elicit
	// liveness traffic. 0 means DefaultPingInterval; negative disables.
	PingInterval time.Duration
	// IdleTimeout is the read-side liveness deadline: a connection that
	// produces no inbound frame (data, ping or pong — clients answer pings
	// transparently) for this long is torn down and its engine session
	// released. Without it, a client that vanishes without a TCP reset holds
	// its shared-scan consumers forever. 0 means DefaultIdleTimeout;
	// negative disables.
	IdleTimeout time.Duration
	// Role names this server's position in the serving topology, stated in
	// hello frames and on /healthz: "" (standalone), "shard" (one partition
	// behind a scatter-gather coordinator) or "coord" (the coordinator).
	Role string
	// Peers lists every address this serving tier is reachable at (this
	// server plus its warm standbys), stated in hello frames so clients
	// can extend their redial address list with addresses they never
	// dialed. Order is the suggested dial preference.
	Peers []string
	// Rebalance, when set, handles topology-change requests arriving on the
	// POST /rebalance admin endpoint (coordinators wire it to the shard
	// tier's AddReplica/RemoveReplica/Rebalance). nil — the common case for
	// standalone servers and shards — leaves the endpoint answering 404.
	Rebalance func(req RebalanceRequest) error
	// Durable, when set, is the durability subsystem backing this server.
	// The serving layer itself does not log batches — the Apply function is
	// expected to enforce WAL-before-apply ordering internally (validate the
	// batch, append it to the write-ahead log with an fsync, then apply to
	// the engine; ingest.Applier.SetLog wires exactly that), so an ingest
	// frame is never acked or broadcast unless the batch is already durable.
	// The server uses this handle to surface recovery state on /healthz and
	// to flush the log as the final step of a drain.
	Durable Durability
}

// Durability is the serving layer's view of the durable-state subsystem
// (implemented by internal/durable's Store via a thin adapter).
type Durability interface {
	// DurableStatus reports recovery and log state for /healthz.
	DurableStatus() DurableStatus
	// Flush forces the write-ahead log to stable storage; the drain path
	// calls it last, so a clean shutdown never leaves an unflushed tail.
	Flush() error
}

// DurableStatus mirrors the durable store's health for /healthz: what
// recovery found at startup plus the live checkpoint/WAL state.
type DurableStatus struct {
	// Recovered is true when startup warm-loaded a checkpoint rather than
	// building cold.
	Recovered bool
	// FellBack is true when the newest checkpoint failed verification and
	// an older one was used.
	FellBack          bool
	CheckpointVersion int64
	ReplayedBatches   int
	ReplayedRows      int64
	// TruncatedTail is true when recovery cut off a torn/corrupt WAL tail.
	TruncatedTail bool
	// RecoveredWatermark is the data version serving resumed at.
	RecoveredWatermark    int64
	WALBytes              int64
	Checkpoints           int
	LastCheckpointVersion int64
}

// DefaultMaxConns bounds concurrent sessions when Options.MaxConns is 0.
const DefaultMaxConns = 256

// DefaultPollInterval is the default snapshot streaming granularity. The
// benchmark's scaled time requirements run 2–40ms, so 1ms gives several
// intermediates inside even the tightest TR.
const DefaultPollInterval = time.Millisecond

// DefaultWriteTimeout is the per-frame write budget: orders of magnitude
// above any honest client's drain latency, small enough that a stalled
// client cannot hold its session (and the finals accumulating for it) for
// long.
const DefaultWriteTimeout = 30 * time.Second

// maxQueuedFinals caps the per-connection final-frame backlog. Finals are
// never dropped for a live client, so the only way past this bound is a
// client issuing queries faster than it reads results for longer than the
// write timeout — abuse, answered by disconnect.
const maxQueuedFinals = 4096

// DefaultMaxInflight bounds concurrent queries server-wide. High enough
// that closed-loop replays (a few queries per analyst) never see it; the
// open-loop overload experiments tune it down to move the knee.
const DefaultMaxInflight = 1024

// DefaultMaxInflightPerConn bounds one connection's concurrent queries.
const DefaultMaxInflightPerConn = 256

// DefaultRetryHint is the suggested backoff on retryable rejections: a few
// query lifetimes at the benchmark's interactivity deadlines.
const DefaultRetryHint = 50 * time.Millisecond

// DefaultLateFactor: work still running at twice the client's stated
// deadline is shed. The client already took its deadline snapshot at 1×, so
// 2× keeps a grace window for almost-done queries while bounding how long a
// hopeless one can occupy the scan.
const DefaultLateFactor = 2

// DefaultPingInterval/DefaultIdleTimeout give three missed pings before a
// silent connection is declared dead — far above any honest client's pause,
// small enough that a vanished client's session is reclaimed promptly.
const (
	DefaultPingInterval = 10 * time.Second
	DefaultIdleTimeout  = 30 * time.Second
)

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = DefaultMaxConns
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.MaxInflightPerConn <= 0 {
		o.MaxInflightPerConn = DefaultMaxInflightPerConn
	}
	if o.RetryHint <= 0 {
		o.RetryHint = DefaultRetryHint
	}
	if o.LateFactor == 0 {
		o.LateFactor = DefaultLateFactor
	}
	if o.PingInterval == 0 {
		o.PingInterval = DefaultPingInterval
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	return o
}

// Counters are the server's cumulative overload and liveness counters,
// exposed on /healthz. All fields are monotone; read them with Load.
type Counters struct {
	// Admitted counts queries accepted past admission control.
	Admitted atomic.Int64
	// RejectedOverload counts queries refused at the global MaxInflight cap.
	RejectedOverload atomic.Int64
	// RejectedPerConn counts queries refused at the per-connection fairness
	// cap while the server as a whole had room.
	RejectedPerConn atomic.Int64
	// RejectedDraining counts queries refused because the server was
	// draining (terminal rejections).
	RejectedDraining atomic.Int64
	// ConnsRejected counts upgrade attempts refused pre-session (connection
	// cap or drain).
	ConnsRejected atomic.Int64
	// ShedLate counts queries cancelled by deadline-aware shedding.
	ShedLate atomic.Int64
	// ShedSpeculative counts speculative scan consumers detached under
	// admission pressure.
	ShedSpeculative atomic.Int64
	// DroppedIntermediates counts unsent intermediate snapshots superseded
	// by fresher ones in the outbox (backpressure coalescing).
	DroppedIntermediates atomic.Int64
	// IdleDisconnects counts connections torn down by the read-side
	// liveness deadline.
	IdleDisconnects atomic.Int64
}

// Server serves one prepared engine. It is an http.Handler: "/ws" upgrades
// to the WebSocket protocol, "/healthz" reports JSON health, and — when
// Options.Rebalance is wired — "/rebalance" accepts topology changes.
type Server struct {
	eng  engine.Engine
	caps engine.Capabilities // optional capabilities, resolved once in New
	opts Options
	mux  *http.ServeMux

	ctr      Counters
	inflight atomic.Int64 // queries executing across all connections
	lastShed atomic.Int64 // monotonic ns of the last speculation shed

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	draining bool

	hs *http.Server
}

// New builds a server over an already-prepared engine.
func New(eng engine.Engine, opts Options) *Server {
	s := &Server{
		eng:   eng,
		caps:  engine.CapabilitiesOf(eng),
		opts:  opts.withDefaults(),
		mux:   http.NewServeMux(),
		conns: make(map[*serverConn]struct{}),
	}
	s.mux.HandleFunc("/ws", s.handleWS)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	if s.opts.Rebalance != nil {
		s.mux.HandleFunc("/rebalance", s.handleRebalance)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve accepts connections on l until Shutdown or a listener error.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s}
	s.mu.Lock()
	s.hs = hs
	s.mu.Unlock()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains every connection (in-flight queries deliver their final
// snapshots, outboxes flush) and stops the listener. Connections still
// draining when ctx expires are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	hs := s.hs
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *serverConn) {
			defer wg.Done()
			c.drain(ctx)
		}(c)
	}
	wg.Wait()
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
	}
	// Flush the durable log last: every connection has drained, so the log
	// is quiescent and a clean shutdown leaves no unflushed tail behind.
	if s.opts.Durable != nil {
		return s.opts.Durable.Flush()
	}
	return nil
}

// liveWatermark is the single source of truth for the data version the
// server is at: the engine's absorbed row count when it has the watermark
// capability, never below the prepared row count. The hello frame, the
// /healthz document and the recovery banner all report this one value — it
// is what a reconnecting client resumes at after a crash recovery.
func (s *Server) liveWatermark() int64 {
	rows := s.opts.Rows
	if s.caps.Watermarker != nil {
		if wm := s.caps.Watermarker.Watermark(); wm > rows {
			rows = wm
		}
	}
	return rows
}

// ConnCount returns the number of live connections (= open sessions).
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Counters exposes the server's overload/liveness counters for tests and
// embedding callers; /healthz reports the same numbers over HTTP.
func (s *Server) Counters() *Counters { return &s.ctr }

// shedSpeculation asks the engine to drop speculative scan work (if it has
// the capability), rate-limited to once per 10ms so a rejection storm does
// not convoy on the scheduler lock.
func (s *Server) shedSpeculation() {
	sh := s.caps.Shedder
	if sh == nil {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastShed.Load()
	if now-last < int64(10*time.Millisecond) || !s.lastShed.CompareAndSwap(last, now) {
		return
	}
	if n := sh.ShedSpeculation(); n > 0 {
		s.ctr.ShedSpeculative.Add(int64(n))
	}
}

// HealthSchemaVersion identifies the /healthz document layout. Monitoring
// that scrapes the endpoint keys off this field instead of sniffing for
// marker fields. Version 1 is the pre-elasticity document (implicit — it
// carried no schema_version field, so its absence identifies it); version 2
// added schema_version itself plus the replica-set topology block.
const HealthSchemaVersion = 2

// Health is the /healthz document — THE wire schema for server health, one
// struct instead of ad-hoc map building, versioned by SchemaVersion.
type Health struct {
	// SchemaVersion is HealthSchemaVersion; absent (0) on documents from
	// pre-elasticity servers.
	SchemaVersion int    `json:"schema_version"`
	Engine        string `json:"engine"`
	Rows          int64  `json:"rows"`
	// Version is the wire ProtoVersion the server speaks on /ws.
	Version  int  `json:"version"`
	Conns    int  `json:"conns"`
	MaxConns int  `json:"max_conns"`
	Draining bool `json:"draining"`
	// Inflight is the number of queries currently executing.
	Inflight int64 `json:"inflight"`
	// Watermark is the engine's absorbed row count (engines with the append
	// capability; otherwise the prepared row count).
	Watermark int64 `json:"watermark"`
	// ScanConsumers is the engine's attached shared-scan consumer count
	// (engines with the observer capability; otherwise 0). After a full
	// drain this must read 0 — anything else is a leak.
	ScanConsumers int `json:"scan_consumers"`
	// Role/Shards/ShardWatermarks describe the scatter-gather topology:
	// Role mirrors Options.Role; the shard fields appear on coordinators
	// (engines with the shard-observer capability) — per-shard confirmed
	// watermarks on the coordinator's global axis, and their min, which is
	// the freshness bound every merged snapshot's Watermark obeys.
	Role              string  `json:"role,omitempty"`
	Shards            int     `json:"shards,omitempty"`
	ShardWatermarks   []int64 `json:"shard_watermarks,omitempty"`
	MinShardWatermark int64   `json:"min_shard_watermark,omitempty"`
	// Topology is the replica-set topology of a replicated coordinator
	// (engines with the topology-observer capability): which replicas serve
	// each partition, their health/sync state, and the anti-entropy alarm
	// counters. Absent on standalone servers and plain shards.
	Topology *engine.Topology `json:"topology,omitempty"`
	// Cumulative overload/liveness counters (see Counters).
	Admitted             int64 `json:"admitted"`
	RejectedOverload     int64 `json:"rejected_overload"`
	RejectedPerConn      int64 `json:"rejected_per_conn"`
	RejectedDraining     int64 `json:"rejected_draining"`
	ConnsRejected        int64 `json:"conns_rejected"`
	ShedLate             int64 `json:"shed_late"`
	ShedSpeculative      int64 `json:"shed_speculative"`
	DroppedIntermediates int64 `json:"dropped_intermediates"`
	IdleDisconnects      int64 `json:"idle_disconnects"`
	// Durability fields (servers running with a data directory).
	Durable               bool  `json:"durable"`
	Recovered             bool  `json:"recovered,omitempty"`
	RecoveryFellBack      bool  `json:"recovery_fell_back,omitempty"`
	CheckpointVersion     int64 `json:"checkpoint_version,omitempty"`
	RecoveredWatermark    int64 `json:"recovered_watermark,omitempty"`
	WALReplayedBatches    int   `json:"wal_replayed_batches,omitempty"`
	WALReplayedRows       int64 `json:"wal_replayed_rows,omitempty"`
	WALTruncatedTail      bool  `json:"wal_truncated_tail,omitempty"`
	WALBytes              int64 `json:"wal_bytes,omitempty"`
	Checkpoints           int   `json:"checkpoints,omitempty"`
	LastCheckpointVersion int64 `json:"last_checkpoint_version,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{
		SchemaVersion: HealthSchemaVersion,
		Engine:        s.eng.Name(),
		Rows:          s.opts.Rows,
		Version:       ProtoVersion,
		Conns:         len(s.conns),
		MaxConns:      s.opts.MaxConns,
		Draining:      s.draining,
	}
	s.mu.Unlock()
	h.Inflight = s.inflight.Load()
	h.Watermark = s.liveWatermark()
	if d := s.opts.Durable; d != nil {
		ds := d.DurableStatus()
		h.Durable = true
		h.Recovered = ds.Recovered
		h.RecoveryFellBack = ds.FellBack
		h.CheckpointVersion = ds.CheckpointVersion
		h.RecoveredWatermark = ds.RecoveredWatermark
		h.WALReplayedBatches = ds.ReplayedBatches
		h.WALReplayedRows = ds.ReplayedRows
		h.WALTruncatedTail = ds.TruncatedTail
		h.WALBytes = ds.WALBytes
		h.Checkpoints = ds.Checkpoints
		h.LastCheckpointVersion = ds.LastCheckpointVersion
	}
	if obs := s.caps.ScanObserver; obs != nil {
		h.ScanConsumers = obs.ActiveScanConsumers()
	}
	h.Role = s.opts.Role
	if so := s.caps.ShardObserver; so != nil {
		wms := so.ShardWatermarks()
		h.Shards = len(wms)
		h.ShardWatermarks = wms
		for i, w := range wms {
			if i == 0 || w < h.MinShardWatermark {
				h.MinShardWatermark = w
			}
		}
	}
	if to := s.caps.TopologyObserver; to != nil {
		topo := to.Topology()
		h.Topology = &topo
	}
	h.Admitted = s.ctr.Admitted.Load()
	h.RejectedOverload = s.ctr.RejectedOverload.Load()
	h.RejectedPerConn = s.ctr.RejectedPerConn.Load()
	h.RejectedDraining = s.ctr.RejectedDraining.Load()
	h.ConnsRejected = s.ctr.ConnsRejected.Load()
	h.ShedLate = s.ctr.ShedLate.Load()
	h.ShedSpeculative = s.ctr.ShedSpeculative.Load()
	h.DroppedIntermediates = s.ctr.DroppedIntermediates.Load()
	h.IdleDisconnects = s.ctr.IdleDisconnects.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// RebalanceRequest is the POST /rebalance admin payload: one topology
// change. Op selects the operation — "add" attaches Addr as a cold replica
// of Partition (it joins unsynced and is promoted once its watermark proves
// it caught up), "remove" detaches the replica named Name, "rebalance"
// performs the checkpoint-streaming hash-range handoff to Addr and attaches
// it fully in sync.
type RebalanceRequest struct {
	Op        string `json:"op"`
	Partition int    `json:"partition"`
	// Addr is the replica backend address ("host:port") for add/rebalance.
	Addr string `json:"addr,omitempty"`
	// Name is the replica name to detach for remove (as reported on the
	// /healthz topology block).
	Name string `json:"name,omitempty"`
}

// handleRebalance decodes one admin topology change and hands it to the
// Options.Rebalance hook. 200 with a JSON {"ok":true} on success; failures
// are 4xx/5xx with the error in the body so `idebench rebalance` can print
// it verbatim.
func (s *Server) handleRebalance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "rebalance wants POST", http.StatusMethodNotAllowed)
		return
	}
	var req RebalanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad rebalance request: "+err.Error(), http.StatusBadRequest)
		return
	}
	switch req.Op {
	case "add", "remove", "rebalance":
	default:
		http.Error(w, fmt.Sprintf("unknown rebalance op %q", req.Op), http.StatusBadRequest)
		return
	}
	if err := s.opts.Rebalance(req); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ok":true}`)
}

// rejectUpgrade writes a pre-upgrade 503 with a machine-readable reason so
// clients can classify it: "overloaded" carries a Retry-After hint (the
// house is full, come back), "draining" does not (the server is leaving).
func (s *Server) rejectUpgrade(w http.ResponseWriter, reason string) {
	s.ctr.ConnsRejected.Add(1)
	w.Header().Set(rejectReasonHeader, reason)
	if reason == ReasonOverloaded {
		secs := int((s.opts.RetryHint + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	http.Error(w, "server "+reason, http.StatusServiceUnavailable)
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectUpgrade(w, ReasonDraining)
		return
	}
	if len(s.conns) >= s.opts.MaxConns {
		s.mu.Unlock()
		s.rejectUpgrade(w, ReasonOverloaded)
		return
	}
	s.mu.Unlock()

	ws, err := upgradeWS(w, r)
	if err != nil {
		return // upgradeWS already wrote the HTTP error
	}
	c := &serverConn{
		srv:        s,
		ws:         ws,
		sess:       s.eng.OpenSession(),
		poll:       s.opts.PollInterval,
		writeLimit: s.opts.WriteTimeout,
		inflight:   make(map[int64]engine.Handle),
		pending:    make(map[int64]*ServerMsg),
		wake:       make(chan struct{}, 1),
		closed:     make(chan struct{}),
	}

	s.mu.Lock()
	// Re-check under the lock: Shutdown may have raced the upgrade. Past the
	// 101 the rejection must travel as a close frame; the code tells the
	// client whether reconnecting can help.
	if s.draining || len(s.conns) >= s.opts.MaxConns {
		draining := s.draining
		s.mu.Unlock()
		s.ctr.ConnsRejected.Add(1)
		c.sess.Close()
		if draining {
			ws.CloseWith(CloseGoingAway, "server draining")
		} else {
			ws.CloseWith(CloseTryLater, "connection limit reached")
		}
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	// Hello reports the live watermark when the engine grows under ingestion,
	// so a reconnecting client resumes at the server's current version rather
	// than the prepare-time row count.
	hello := &ServerMsg{Type: MsgHello, Version: ProtoVersion, Engine: s.eng.Name(), Rows: s.liveWatermark(), Seed: s.opts.Seed, Role: s.opts.Role, Peers: s.opts.Peers}
	if data, err := encodeMsg(hello); err != nil || ws.WriteMessage(data) != nil {
		c.teardown()
		return
	}
	if s.opts.IdleTimeout > 0 {
		ws.SetIdleTimeout(s.opts.IdleTimeout)
	}
	if s.opts.PingInterval > 0 {
		go c.pingLoop(s.opts.PingInterval)
	}
	go c.writeLoop()
	c.readLoop()
}

func (s *Server) removeConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handleIngest applies one client ingest frame and broadcasts the new
// watermark to every live session (the feeder included — its confirmation
// is the same frame everyone else gets). Ingestion during drain is
// rejected: the drain contract is "finish what is in flight", not "accept
// new writes".
func (s *Server) handleIngest(from *serverConn, m *ClientMsg) {
	s.mu.Lock()
	apply := s.opts.Apply
	draining := s.draining
	s.mu.Unlock()
	if draining {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: "server draining"})
		return
	}
	if apply == nil {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID,
			Error: fmt.Sprintf("engine %s does not accept ingestion", s.eng.Name())})
		return
	}
	w, err := apply(m.Batch)
	if err != nil {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	frame := &ServerMsg{Type: MsgIngest, Watermark: w}
	for _, c := range conns {
		c.push(frame)
	}
}

// serverConn is one WebSocket connection bound to one engine session.
type serverConn struct {
	srv        *Server
	ws         *WSConn
	sess       engine.Session
	poll       time.Duration
	writeLimit time.Duration

	mu       sync.Mutex
	inflight map[int64]engine.Handle
	pending  map[int64]*ServerMsg // unsent intermediates, coalesced per query
	finals   []*ServerMsg         // finals + errors, FIFO, never dropped
	// pendingIngest coalesces watermark broadcasts: watermarks are monotone
	// and the client keeps only the max, so an unsent frame is strictly
	// superseded by the next. Without coalescing, sustained ingestion would
	// grow a slow bystander's never-dropped finals backlog with redundant
	// frames until the overflow guard killed its session.
	pendingIngest *ServerMsg
	draining      bool
	closing       bool // teardown begun: no new watchers may be added
	inWrite       bool // writer holds a dequeued frame it hasn't written yet
	// closeCode/closeReason, when set before teardown, are sent in the close
	// frame so the client can classify the disconnect (retryable/terminal).
	closeCode   uint16
	closeReason string

	wake      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	watchers  sync.WaitGroup
}

// setCloseReason records the close code the eventual teardown should send.
// First caller wins: the first reason is the root cause.
func (c *serverConn) setCloseReason(code uint16, reason string) {
	c.mu.Lock()
	if c.closeCode == 0 {
		c.closeCode = code
		c.closeReason = reason
	}
	c.mu.Unlock()
}

// pingLoop elicits liveness traffic: any live peer's ReadMessage answers
// pings with pongs, which re-arm the server's idle read deadline. A write
// failure means the connection is gone; teardown releases the session.
func (c *serverConn) pingLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.ws.SetWriteDeadline(time.Now().Add(c.writeLimit))
			if c.ws.WritePing() != nil {
				c.teardown()
				return
			}
		}
	}
}

// readLoop decodes client frames until the connection drops, then tears the
// session down. It is the connection's owning goroutine.
func (c *serverConn) readLoop() {
	defer c.teardown()
	for {
		data, err := c.ws.ReadMessage()
		if err != nil {
			// A read deadline here is the idle-liveness timeout tripping: the
			// peer sent nothing (not even pongs) for IdleTimeout — it is gone
			// without having said so. Tell it why, should it still be
			// half-listening, and release its session.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.srv.ctr.IdleDisconnects.Add(1)
				c.setCloseReason(CloseIdleTimeout, "idle deadline exceeded")
			}
			return
		}
		m, err := decodeClientMsg(data)
		if err != nil {
			// Malformed frames are protocol violations: report and hang up.
			// The diagnostic is written synchronously — pushing it through
			// the outbox would race the teardown this return triggers.
			if frame, eerr := encodeMsg(&ServerMsg{Type: MsgError, Error: err.Error()}); eerr == nil {
				c.ws.WriteMessage(frame)
			}
			return
		}
		switch m.Type {
		case MsgQuery:
			c.startQuery(m)
		case MsgCancel:
			c.mu.Lock()
			h := c.inflight[m.ID]
			c.mu.Unlock()
			if h != nil {
				h.Cancel()
			}
		case MsgIngest:
			c.srv.handleIngest(c, m)
		case MsgLink:
			c.sess.LinkVizs(m.From, m.To)
		case MsgDeleteViz:
			c.sess.DeleteViz(m.Name)
		case MsgWorkflowStart:
			c.sess.WorkflowStart()
		case MsgWorkflowEnd:
			c.sess.WorkflowEnd()
		}
	}
}

func (c *serverConn) startQuery(m *ClientMsg) {
	srv := c.srv
	c.mu.Lock()
	if c.draining || c.closing {
		c.mu.Unlock()
		// Terminal rejection (RetryMS 0): this connection accepts no further
		// queries. Explicit, and unlike an error frame it does not poison
		// the client session — in-flight queries still deliver their finals.
		srv.ctr.RejectedDraining.Add(1)
		c.push(&ServerMsg{Type: MsgReject, ID: m.ID, Error: "server draining"})
		return
	}
	if _, dup := c.inflight[m.ID]; dup {
		c.mu.Unlock()
		c.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: fmt.Sprintf("duplicate query id %d", m.ID)})
		return
	}
	perConn := len(c.inflight)
	c.mu.Unlock()

	// Admission control, cheapest valve first: shed speculative scan work as
	// pressure builds, then refuse queries — per-connection fairness before
	// the global cap, so one firehose session cannot crowd everyone else out.
	retryMS := int64(srv.opts.RetryHint / time.Millisecond)
	if perConn >= srv.opts.MaxInflightPerConn {
		srv.shedSpeculation()
		srv.ctr.RejectedPerConn.Add(1)
		c.push(&ServerMsg{Type: MsgReject, ID: m.ID, Error: "session query limit reached", RetryMS: retryMS})
		return
	}
	if in := srv.inflight.Load(); in >= int64(srv.opts.MaxInflight) {
		srv.shedSpeculation()
		srv.ctr.RejectedOverload.Add(1)
		c.push(&ServerMsg{Type: MsgReject, ID: m.ID, Error: "server query limit reached", RetryMS: retryMS})
		return
	} else if 4*in >= 3*int64(srv.opts.MaxInflight) {
		// Approaching the cap: drop background speculation now so admitted
		// foreground queries get the freed scan capacity.
		srv.shedSpeculation()
	}

	h, err := c.sess.StartQuery(m.Query)
	if err != nil {
		c.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	c.mu.Lock()
	if c.closing {
		// Teardown raced the start: the watcher WaitGroup is (or is about to
		// be) waited on, so cancel directly instead of spawning.
		c.mu.Unlock()
		h.Cancel()
		return
	}
	c.inflight[m.ID] = h
	c.watchers.Add(1)
	srv.inflight.Add(1)
	srv.ctr.Admitted.Add(1)
	c.mu.Unlock()
	var lateBudget time.Duration
	if m.DeadlineMS > 0 && srv.opts.LateFactor > 0 {
		lateBudget = time.Duration(float64(m.DeadlineMS)*srv.opts.LateFactor) * time.Millisecond
	}
	go c.watch(m.ID, h, lateBudget, m.Partials)
}

// watch streams one query's snapshots: intermediates at the poll interval
// while the result advances, then the final at completion. On connection
// close it cancels the handle so the engine frees the query promptly. A
// positive lateBudget arms deadline-aware shedding: a query still running
// that long after admission is cancelled (its partial final marked Shed) —
// the client took its deadline snapshot long ago, so every further chunk
// this query folds is capacity stolen from queries that can still make
// their deadlines.
func (c *serverConn) watch(id int64, h engine.Handle, lateBudget time.Duration, partials bool) {
	defer c.srv.inflight.Add(-1)
	defer c.watchers.Done()
	// A client that asked for partials gets the raw accumulator state on
	// every snapshot frame — if the engine's handle has the capability; a
	// capability-less handle sends plain frames and the coordinator reports
	// the missing partials itself.
	var ps engine.PartialSnapshotter
	if partials {
		ps, _ = h.(engine.PartialSnapshotter)
	}
	takePartial := func() *engine.Partial {
		if ps == nil {
			return nil
		}
		return ps.PartialSnapshot()
	}
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	var seq int64
	lastRows := int64(-1)
	start := time.Now()
	shed := false
	for {
		select {
		case <-h.Done():
			snap := h.Snapshot()
			seq++
			// Push before dropping from inflight so drain's idle check never
			// sees "no queries, empty outbox" with the final still unqueued.
			c.push(&ServerMsg{Type: MsgSnapshot, ID: id, Seq: seq, Final: true, Result: snap, Shed: shed, Partial: takePartial()})
			c.finishQuery(id)
			return
		case <-c.closed:
			h.Cancel()
			c.finishQuery(id)
			return
		case <-ticker.C:
			if lateBudget > 0 && !shed && time.Since(start) > lateBudget {
				shed = true
				c.srv.ctr.ShedLate.Add(1)
				h.Cancel() // Done closes with the partial result; loop drains it
				continue
			}
			snap := h.Snapshot()
			if snap == nil || snap.RowsSeen == lastRows {
				continue
			}
			lastRows = snap.RowsSeen
			seq++
			c.push(&ServerMsg{Type: MsgSnapshot, ID: id, Seq: seq, Result: snap, Partial: takePartial()})
		}
	}
}

func (c *serverConn) finishQuery(id int64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// push enqueues a frame under the connection's backpressure rules and wakes
// the writer. Never blocks. A connection whose final backlog exceeds the
// cap is abusing the protocol (issuing queries far faster than it reads
// results) and is torn down rather than buffered without bound.
func (c *serverConn) push(m *ServerMsg) {
	c.mu.Lock()
	switch {
	case m.Type == MsgSnapshot && !m.Final:
		if c.pending[m.ID] != nil {
			c.srv.ctr.DroppedIntermediates.Add(1)
		}
		c.pending[m.ID] = m
	case m.Type == MsgIngest:
		// Keep the highest unsent watermark: concurrent feeders' broadcasts
		// can reach this outbox out of order, and clients track the max.
		if c.pendingIngest == nil || m.Watermark > c.pendingIngest.Watermark {
			c.pendingIngest = m
		}
	default:
		// A terminal frame supersedes any unsent intermediate for its query.
		delete(c.pending, m.ID)
		c.finals = append(c.finals, m)
	}
	overflow := len(c.finals) > maxQueuedFinals
	c.mu.Unlock()
	if overflow {
		c.setCloseReason(CloseOverflow, "final backlog overflow")
		go c.teardown() // not inline: push is called under watcher stacks
		return
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// next dequeues the next frame to write: terminal frames first, then any
// coalesced intermediate. The inWrite flag marks the dequeued frame as
// still-unflushed until doneWrite, so drains don't close the socket under a
// frame in transit.
func (c *serverConn) next() *ServerMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.finals) > 0 {
		m := c.finals[0]
		c.finals = c.finals[1:]
		c.inWrite = true
		return m
	}
	if m := c.pendingIngest; m != nil {
		c.pendingIngest = nil
		c.inWrite = true
		return m
	}
	for id, m := range c.pending {
		delete(c.pending, id)
		c.inWrite = true
		return m
	}
	c.inWrite = false
	return nil
}

func (c *serverConn) doneWrite() {
	c.mu.Lock()
	c.inWrite = false
	c.mu.Unlock()
}

// idle reports whether no query is in flight and every enqueued frame has
// been written — the condition under which a drain may close the socket.
func (c *serverConn) idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight) == 0 && len(c.finals) == 0 && len(c.pending) == 0 &&
		c.pendingIngest == nil && !c.inWrite
}

// writeLoop owns the socket's write side: it drains the outbox whenever
// woken and exits when the connection closes or a write fails.
func (c *serverConn) writeLoop() {
	for {
		select {
		case <-c.wake:
		case <-c.closed:
			return
		}
		for {
			m := c.next()
			if m == nil {
				break
			}
			data, err := encodeMsg(m)
			if err != nil {
				c.doneWrite() // unencodable frame: drop, keep the connection
				continue
			}
			// Bounded write: a client that stopped reading trips the
			// deadline and is disconnected (teardown below releases its
			// session), instead of parking this goroutine while finals
			// accumulate for it without limit.
			c.ws.SetWriteDeadline(time.Now().Add(c.writeLimit))
			werr := c.ws.WriteMessage(data)
			c.doneWrite()
			if werr != nil {
				c.teardown()
				return
			}
		}
	}
}

// drain stops accepting queries, waits for in-flight queries to deliver
// their finals and the outbox to flush (bounded by ctx), then closes. It
// polls the idle condition instead of waiting on the watcher WaitGroup so
// it never races a watcher registration accepted just before the drain.
func (c *serverConn) drain(ctx context.Context) {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	// The close frame at the end of a drain is a goodbye, not a fault: 1001
	// tells the client the server is going away for good (terminal).
	c.setCloseReason(CloseGoingAway, "server draining")

	for !c.idle() {
		select {
		case <-ctx.Done():
			c.teardown()
			return
		case <-c.closed:
			return
		case <-time.After(time.Millisecond):
		}
	}
	c.teardown()
}

// teardown closes the connection exactly once: watchers cancel their
// handles, the session closes, and the server forgets the connection.
func (c *serverConn) teardown() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closing = true
		code, reason := c.closeCode, c.closeReason
		c.mu.Unlock()
		close(c.closed)
		if code != 0 {
			c.ws.CloseWith(code, reason)
		} else {
			c.ws.Close()
		}
		// Watchers observe c.closed, cancel their handles and exit; the
		// session must outlive them since cancellation goes through it.
		c.watchers.Wait()
		c.sess.Close()
		c.srv.removeConn(c)
	})
}
