// Package server exposes a prepared engine.Engine over the network: an HTTP
// endpoint that upgrades to WebSocket, binds one engine.Session per
// connection, and streams progressive result snapshots as they land.
//
// # Session-per-connection
//
// Each WebSocket connection is one simulated analyst: the handler opens an
// engine session on accept and closes it on disconnect, so the server-side
// resource lifetime is exactly the connection lifetime — a vanished client
// releases its shared-scan consumers without any reaper.
//
// # Streaming with backpressure
//
// A per-query watcher polls the engine handle and enqueues snapshot frames
// into a per-connection outbox with drop-intermediate, always-deliver-final
// semantics: an unsent intermediate snapshot is overwritten by the next one
// (the newer snapshot strictly supersedes it — progressive results are
// monotone in rows seen), while final frames queue FIFO and are never
// dropped. A slow client therefore sees fewer, fresher intermediates and
// every final, and never stalls the engine's shared scan: watchers swap a
// pointer under a mutex instead of blocking on the socket. A client that
// stops reading entirely is bounded the other way — each frame write
// carries a deadline (Options.WriteTimeout) and the final backlog is
// capped, so a dead peer is disconnected and its session released instead
// of accumulating results indefinitely.
//
// # Lifecycle
//
// Drain (SIGTERM) stops accepting connections and queries, lets in-flight
// queries publish their final frames, flushes outboxes, then closes. The
// connection count is capped by Options.MaxConns; excess upgrades are
// rejected with 503 before any session is opened.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"idebench/internal/engine"
	"idebench/internal/ingest"
)

// Options tunes the serving layer.
type Options struct {
	// MaxConns caps concurrent WebSocket connections (= engine sessions);
	// 0 means DefaultMaxConns.
	MaxConns int
	// PollInterval is the watcher's snapshot poll period — the granularity
	// of intermediate frames. 0 means DefaultPollInterval.
	PollInterval time.Duration
	// Rows is the prepared fact-table size, stated in the hello frame so
	// clients can sanity-check they built the matching ground truth.
	Rows int64
	// Seed is the dataset seed, stated in the hello frame for the same
	// ground-truth check (0 = unknown, clients skip the check).
	Seed int64
	// WriteTimeout bounds each frame write; a client that stops reading is
	// disconnected (session released) instead of parking the writer
	// goroutine and accumulating final frames forever. 0 means
	// DefaultWriteTimeout.
	WriteTimeout time.Duration
	// Apply handles client ingest frames: it applies the batch to the
	// served engine and returns the post-apply watermark, which the server
	// then broadcasts to every live session. nil (an engine without the
	// append capability) rejects ingest frames with an error frame.
	Apply func(b *ingest.Batch) (int64, error)
}

// DefaultMaxConns bounds concurrent sessions when Options.MaxConns is 0.
const DefaultMaxConns = 256

// DefaultPollInterval is the default snapshot streaming granularity. The
// benchmark's scaled time requirements run 2–40ms, so 1ms gives several
// intermediates inside even the tightest TR.
const DefaultPollInterval = time.Millisecond

// DefaultWriteTimeout is the per-frame write budget: orders of magnitude
// above any honest client's drain latency, small enough that a stalled
// client cannot hold its session (and the finals accumulating for it) for
// long.
const DefaultWriteTimeout = 30 * time.Second

// maxQueuedFinals caps the per-connection final-frame backlog. Finals are
// never dropped for a live client, so the only way past this bound is a
// client issuing queries faster than it reads results for longer than the
// write timeout — abuse, answered by disconnect.
const maxQueuedFinals = 4096

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = DefaultMaxConns
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = DefaultWriteTimeout
	}
	return o
}

// Server serves one prepared engine. It is an http.Handler: "/ws" upgrades
// to the WebSocket protocol, "/healthz" reports JSON health.
type Server struct {
	eng  engine.Engine
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	draining bool

	hs *http.Server
}

// New builds a server over an already-prepared engine.
func New(eng engine.Engine, opts Options) *Server {
	s := &Server{
		eng:   eng,
		opts:  opts.withDefaults(),
		mux:   http.NewServeMux(),
		conns: make(map[*serverConn]struct{}),
	}
	s.mux.HandleFunc("/ws", s.handleWS)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve accepts connections on l until Shutdown or a listener error.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s}
	s.mu.Lock()
	s.hs = hs
	s.mu.Unlock()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains every connection (in-flight queries deliver their final
// snapshots, outboxes flush) and stops the listener. Connections still
// draining when ctx expires are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	hs := s.hs
	s.mu.Unlock()

	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *serverConn) {
			defer wg.Done()
			c.drain(ctx)
		}(c)
	}
	wg.Wait()
	if hs != nil {
		return hs.Shutdown(ctx)
	}
	return nil
}

// ConnCount returns the number of live connections (= open sessions).
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// health is the /healthz document.
type health struct {
	Engine   string `json:"engine"`
	Rows     int64  `json:"rows"`
	Version  int    `json:"version"`
	Conns    int    `json:"conns"`
	MaxConns int    `json:"max_conns"`
	Draining bool   `json:"draining"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := health{
		Engine:   s.eng.Name(),
		Rows:     s.opts.Rows,
		Version:  ProtoVersion,
		Conns:    len(s.conns),
		MaxConns: s.opts.MaxConns,
		Draining: s.draining,
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	if len(s.conns) >= s.opts.MaxConns {
		s.mu.Unlock()
		http.Error(w, "connection limit reached", http.StatusServiceUnavailable)
		return
	}
	s.mu.Unlock()

	ws, err := upgradeWS(w, r)
	if err != nil {
		return // upgradeWS already wrote the HTTP error
	}
	c := &serverConn{
		srv:        s,
		ws:         ws,
		sess:       s.eng.OpenSession(),
		poll:       s.opts.PollInterval,
		writeLimit: s.opts.WriteTimeout,
		inflight:   make(map[int64]engine.Handle),
		pending:    make(map[int64]*ServerMsg),
		wake:       make(chan struct{}, 1),
		closed:     make(chan struct{}),
	}

	s.mu.Lock()
	// Re-check under the lock: Shutdown may have raced the upgrade.
	if s.draining || len(s.conns) >= s.opts.MaxConns {
		s.mu.Unlock()
		c.sess.Close()
		ws.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()

	hello := &ServerMsg{Type: MsgHello, Version: ProtoVersion, Engine: s.eng.Name(), Rows: s.opts.Rows, Seed: s.opts.Seed}
	if data, err := encodeMsg(hello); err != nil || ws.WriteMessage(data) != nil {
		c.teardown()
		return
	}
	go c.writeLoop()
	c.readLoop()
}

func (s *Server) removeConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// handleIngest applies one client ingest frame and broadcasts the new
// watermark to every live session (the feeder included — its confirmation
// is the same frame everyone else gets). Ingestion during drain is
// rejected: the drain contract is "finish what is in flight", not "accept
// new writes".
func (s *Server) handleIngest(from *serverConn, m *ClientMsg) {
	s.mu.Lock()
	apply := s.opts.Apply
	draining := s.draining
	s.mu.Unlock()
	if draining {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: "server draining"})
		return
	}
	if apply == nil {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID,
			Error: fmt.Sprintf("engine %s does not accept ingestion", s.eng.Name())})
		return
	}
	w, err := apply(m.Batch)
	if err != nil {
		from.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	frame := &ServerMsg{Type: MsgIngest, Watermark: w}
	for _, c := range conns {
		c.push(frame)
	}
}

// serverConn is one WebSocket connection bound to one engine session.
type serverConn struct {
	srv        *Server
	ws         *WSConn
	sess       engine.Session
	poll       time.Duration
	writeLimit time.Duration

	mu       sync.Mutex
	inflight map[int64]engine.Handle
	pending  map[int64]*ServerMsg // unsent intermediates, coalesced per query
	finals   []*ServerMsg         // finals + errors, FIFO, never dropped
	// pendingIngest coalesces watermark broadcasts: watermarks are monotone
	// and the client keeps only the max, so an unsent frame is strictly
	// superseded by the next. Without coalescing, sustained ingestion would
	// grow a slow bystander's never-dropped finals backlog with redundant
	// frames until the overflow guard killed its session.
	pendingIngest *ServerMsg
	draining      bool
	closing       bool // teardown begun: no new watchers may be added
	inWrite       bool // writer holds a dequeued frame it hasn't written yet

	wake      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	watchers  sync.WaitGroup
}

// readLoop decodes client frames until the connection drops, then tears the
// session down. It is the connection's owning goroutine.
func (c *serverConn) readLoop() {
	defer c.teardown()
	for {
		data, err := c.ws.ReadMessage()
		if err != nil {
			return
		}
		m, err := decodeClientMsg(data)
		if err != nil {
			// Malformed frames are protocol violations: report and hang up.
			// The diagnostic is written synchronously — pushing it through
			// the outbox would race the teardown this return triggers.
			if frame, eerr := encodeMsg(&ServerMsg{Type: MsgError, Error: err.Error()}); eerr == nil {
				c.ws.WriteMessage(frame)
			}
			return
		}
		switch m.Type {
		case MsgQuery:
			c.startQuery(m)
		case MsgCancel:
			c.mu.Lock()
			h := c.inflight[m.ID]
			c.mu.Unlock()
			if h != nil {
				h.Cancel()
			}
		case MsgIngest:
			c.srv.handleIngest(c, m)
		case MsgLink:
			c.sess.LinkVizs(m.From, m.To)
		case MsgDeleteViz:
			c.sess.DeleteViz(m.Name)
		case MsgWorkflowStart:
			c.sess.WorkflowStart()
		case MsgWorkflowEnd:
			c.sess.WorkflowEnd()
		}
	}
}

func (c *serverConn) startQuery(m *ClientMsg) {
	c.mu.Lock()
	if c.draining || c.closing {
		c.mu.Unlock()
		c.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: "server draining"})
		return
	}
	if _, dup := c.inflight[m.ID]; dup {
		c.mu.Unlock()
		c.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: fmt.Sprintf("duplicate query id %d", m.ID)})
		return
	}
	c.mu.Unlock()

	h, err := c.sess.StartQuery(m.Query)
	if err != nil {
		c.push(&ServerMsg{Type: MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	c.mu.Lock()
	if c.closing {
		// Teardown raced the start: the watcher WaitGroup is (or is about to
		// be) waited on, so cancel directly instead of spawning.
		c.mu.Unlock()
		h.Cancel()
		return
	}
	c.inflight[m.ID] = h
	c.watchers.Add(1)
	c.mu.Unlock()
	go c.watch(m.ID, h)
}

// watch streams one query's snapshots: intermediates at the poll interval
// while the result advances, then the final at completion. On connection
// close it cancels the handle so the engine frees the query promptly.
func (c *serverConn) watch(id int64, h engine.Handle) {
	defer c.watchers.Done()
	ticker := time.NewTicker(c.poll)
	defer ticker.Stop()
	var seq int64
	lastRows := int64(-1)
	for {
		select {
		case <-h.Done():
			snap := h.Snapshot()
			seq++
			// Push before dropping from inflight so drain's idle check never
			// sees "no queries, empty outbox" with the final still unqueued.
			c.push(&ServerMsg{Type: MsgSnapshot, ID: id, Seq: seq, Final: true, Result: snap})
			c.finishQuery(id)
			return
		case <-c.closed:
			h.Cancel()
			c.finishQuery(id)
			return
		case <-ticker.C:
			snap := h.Snapshot()
			if snap == nil || snap.RowsSeen == lastRows {
				continue
			}
			lastRows = snap.RowsSeen
			seq++
			c.push(&ServerMsg{Type: MsgSnapshot, ID: id, Seq: seq, Result: snap})
		}
	}
}

func (c *serverConn) finishQuery(id int64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// push enqueues a frame under the connection's backpressure rules and wakes
// the writer. Never blocks. A connection whose final backlog exceeds the
// cap is abusing the protocol (issuing queries far faster than it reads
// results) and is torn down rather than buffered without bound.
func (c *serverConn) push(m *ServerMsg) {
	c.mu.Lock()
	switch {
	case m.Type == MsgSnapshot && !m.Final:
		c.pending[m.ID] = m
	case m.Type == MsgIngest:
		// Keep the highest unsent watermark: concurrent feeders' broadcasts
		// can reach this outbox out of order, and clients track the max.
		if c.pendingIngest == nil || m.Watermark > c.pendingIngest.Watermark {
			c.pendingIngest = m
		}
	default:
		// A terminal frame supersedes any unsent intermediate for its query.
		delete(c.pending, m.ID)
		c.finals = append(c.finals, m)
	}
	overflow := len(c.finals) > maxQueuedFinals
	c.mu.Unlock()
	if overflow {
		go c.teardown() // not inline: push is called under watcher stacks
		return
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// next dequeues the next frame to write: terminal frames first, then any
// coalesced intermediate. The inWrite flag marks the dequeued frame as
// still-unflushed until doneWrite, so drains don't close the socket under a
// frame in transit.
func (c *serverConn) next() *ServerMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.finals) > 0 {
		m := c.finals[0]
		c.finals = c.finals[1:]
		c.inWrite = true
		return m
	}
	if m := c.pendingIngest; m != nil {
		c.pendingIngest = nil
		c.inWrite = true
		return m
	}
	for id, m := range c.pending {
		delete(c.pending, id)
		c.inWrite = true
		return m
	}
	c.inWrite = false
	return nil
}

func (c *serverConn) doneWrite() {
	c.mu.Lock()
	c.inWrite = false
	c.mu.Unlock()
}

// idle reports whether no query is in flight and every enqueued frame has
// been written — the condition under which a drain may close the socket.
func (c *serverConn) idle() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight) == 0 && len(c.finals) == 0 && len(c.pending) == 0 &&
		c.pendingIngest == nil && !c.inWrite
}

// writeLoop owns the socket's write side: it drains the outbox whenever
// woken and exits when the connection closes or a write fails.
func (c *serverConn) writeLoop() {
	for {
		select {
		case <-c.wake:
		case <-c.closed:
			return
		}
		for {
			m := c.next()
			if m == nil {
				break
			}
			data, err := encodeMsg(m)
			if err != nil {
				c.doneWrite() // unencodable frame: drop, keep the connection
				continue
			}
			// Bounded write: a client that stopped reading trips the
			// deadline and is disconnected (teardown below releases its
			// session), instead of parking this goroutine while finals
			// accumulate for it without limit.
			c.ws.SetWriteDeadline(time.Now().Add(c.writeLimit))
			werr := c.ws.WriteMessage(data)
			c.doneWrite()
			if werr != nil {
				c.teardown()
				return
			}
		}
	}
}

// drain stops accepting queries, waits for in-flight queries to deliver
// their finals and the outbox to flush (bounded by ctx), then closes. It
// polls the idle condition instead of waiting on the watcher WaitGroup so
// it never races a watcher registration accepted just before the drain.
func (c *serverConn) drain(ctx context.Context) {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()

	for !c.idle() {
		select {
		case <-ctx.Done():
			c.teardown()
			return
		case <-c.closed:
			return
		case <-time.After(time.Millisecond):
		}
	}
	c.teardown()
}

// teardown closes the connection exactly once: watchers cancel their
// handles, the session closes, and the server forgets the connection.
func (c *serverConn) teardown() {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closing = true
		c.mu.Unlock()
		close(c.closed)
		c.ws.Close()
		// Watchers observe c.closed, cancel their handles and exit; the
		// session must outlive them since cancellation goes through it.
		c.watchers.Wait()
		c.sess.Close()
		c.srv.removeConn(c)
	})
}
