// The idebench wire protocol: versioned JSON messages over one WebSocket
// connection, one engine session per connection (paper Sec. 4.5 — the
// driver/backend split puts the system adapter behind a connection, not a
// function call).
//
// The client speaks first with every message type below except "hello";
// the server streams zero or more intermediate "snapshot" frames per query
// followed by exactly one final frame (final:true), or an "error" frame.
// Frames for distinct queries interleave freely; seq increases per query so
// a client can detect (harmless) reordering introduced by coalescing.
package server

import (
	"encoding/json"
	"fmt"

	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// ProtoVersion is the wire-protocol version. The server states its version
// in the hello frame; clients reject a mismatch rather than guessing.
// Version 2 added admission control: the "reject" frame, the client-side
// deadline hint on "query", and the shed marker on final snapshots.
// Version 3 added scatter-gather serving: the Partials request flag on
// "query" frames, the raw Partial payload on snapshot frames, and the
// server's Role in the hello frame.
// Version 4 added shard elasticity: the coverage block on degraded results
// (query.Result.Coverage — partitions answered/total, population fraction)
// and the topology/schema_version fields on /healthz. Fully-covered results
// omit the block, so v4 result documents for healthy tiers are byte-for-byte
// the v3 documents; a v3 client parsing a degraded v4 result ignores the
// unknown "coverage" key and must instead key off Complete, which a degraded
// merge always clears.
// Version 5 added coordinator redundancy: the Peers list on the hello frame
// (every address the serving tier may be reached at — the primary plus its
// warm standbys), which clients merge into their redial address list, and
// the quarantined/addr fields and anti-entropy error counter on the
// /healthz topology block.
const ProtoVersion = 5

// Client→server message types.
const (
	// MsgQuery starts asynchronous execution of Query under ID.
	MsgQuery = "query"
	// MsgCancel cancels the in-flight query ID (idempotent; the final
	// snapshot frame still arrives, carrying whatever the engine had).
	MsgCancel = "cancel"
	// MsgLink declares a From→To visualization link on the session.
	MsgLink = "link"
	// MsgDeleteViz discards visualization Name on the session.
	MsgDeleteViz = "delete_viz"
	// MsgWorkflowStart/MsgWorkflowEnd bracket one workflow replay.
	MsgWorkflowStart = "workflow_start"
	MsgWorkflowEnd   = "workflow_end"
)

// MsgIngest flows both ways: a client frame carries an append-only Batch
// the server applies to its engine; the server then broadcasts an ingest
// frame with the post-apply Watermark to every live session, so all
// connected analysts learn the data moved (and by how much) regardless of
// who fed it.
const MsgIngest = "ingest"

// Server→client message types.
const (
	// MsgHello is the first frame on every connection: protocol version,
	// engine name and prepared row count.
	MsgHello = "hello"
	// MsgSnapshot carries one result snapshot for query ID. Final marks the
	// last frame for that ID (execution finished or was cancelled).
	MsgSnapshot = "snapshot"
	// MsgError reports a per-query failure (bad query, engine not prepared);
	// it is terminal for ID. Connection-level failures close the socket.
	MsgError = "error"
	// MsgReject refuses query ID without executing it — admission control,
	// not failure. RetryMS > 0 is the server's backoff hint (the query may
	// succeed if re-offered after that long); RetryMS == 0 is terminal for
	// this connection (e.g. the server is draining). Rejection never poisons
	// the session: subsequent queries are admitted on their own merits.
	MsgReject = "reject"
)

// ClientMsg is any client→server message. Type selects which fields apply:
// ID+Query for "query", ID for "cancel", From/To for "link", Name for
// "delete_viz"; the workflow brackets carry the type alone.
type ClientMsg struct {
	Type  string       `json:"type"`
	ID    int64        `json:"id,omitempty"`
	Query *query.Query `json:"query,omitempty"`
	From  string       `json:"from,omitempty"`
	To    string       `json:"to,omitempty"`
	Name  string       `json:"name,omitempty"`
	// Batch is the appended rows of an "ingest" frame.
	Batch *ingest.Batch `json:"batch,omitempty"`
	// DeadlineMS is the client's interactivity deadline for a "query" frame,
	// in milliseconds. The server treats it as a shedding hint: work still
	// running well past the deadline (Options.LateFactor multiples of it) is
	// cancelled, its partial final marked Shed. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Partials on a "query" frame asks the server to attach the query's raw
	// accumulator state (ServerMsg.Partial) to every snapshot frame, in
	// addition to the rendered Result. Scatter-gather coordinators set it;
	// plain clients never pay the extra payload.
	Partials bool `json:"partials,omitempty"`
}

// Validate checks structural well-formedness (the query itself is validated
// engine-side like any local query).
func (m *ClientMsg) Validate() error {
	switch m.Type {
	case MsgQuery:
		if m.Query == nil {
			return fmt.Errorf("server: %s message without query", m.Type)
		}
		if m.ID <= 0 {
			return fmt.Errorf("server: %s message needs a positive id", m.Type)
		}
	case MsgCancel:
		if m.ID <= 0 {
			return fmt.Errorf("server: %s message needs a positive id", m.Type)
		}
	case MsgLink:
		if m.From == "" || m.To == "" {
			return fmt.Errorf("server: %s message needs from and to", m.Type)
		}
	case MsgDeleteViz:
		if m.Name == "" {
			return fmt.Errorf("server: %s message needs a name", m.Type)
		}
	case MsgIngest:
		if m.Batch == nil {
			return fmt.Errorf("server: %s message without batch", m.Type)
		}
		if err := m.Batch.Validate(); err != nil {
			return err
		}
	case MsgWorkflowStart, MsgWorkflowEnd:
	default:
		return fmt.Errorf("server: unknown client message type %q", m.Type)
	}
	return nil
}

// ServerMsg is any server→client message. Type selects which fields apply:
// Version/Engine/Rows/Seed for "hello", ID/Seq/Final/Result for "snapshot",
// ID/Error for "error", Watermark for "ingest".
type ServerMsg struct {
	Type    string        `json:"type"`
	ID      int64         `json:"id,omitempty"`
	Seq     int64         `json:"seq,omitempty"`
	Final   bool          `json:"final,omitempty"`
	Result  *query.Result `json:"result,omitempty"`
	Error   string        `json:"error,omitempty"`
	Version int           `json:"version,omitempty"`
	Engine  string        `json:"engine,omitempty"`
	Rows    int64         `json:"rows,omitempty"`
	// Watermark is the engine's post-apply row count on "ingest" frames.
	Watermark int64 `json:"watermark,omitempty"`
	// Seed is the dataset seed the server prepared with; clients computing
	// ground truth locally must generate from the same seed or every
	// accuracy metric is silently wrong. 0 means unknown.
	Seed int64 `json:"seed,omitempty"`
	// RetryMS is the backoff hint on a "reject" frame, milliseconds; 0 marks
	// the rejection terminal (see MsgReject).
	RetryMS int64 `json:"retry_ms,omitempty"`
	// Shed marks a final snapshot whose query was cancelled by deadline-aware
	// shedding rather than run to completion: the result is the progressive
	// estimate as of the cancel, valid but not converged.
	Shed bool `json:"shed,omitempty"`
	// Partial is the query's raw accumulator state, attached to snapshot
	// frames when the query frame requested Partials (and the engine has the
	// capability). Floats travel as IEEE-754 bits (engine.F64), so a
	// coordinator's merge is bitwise the merge a local scan would do.
	Partial *engine.Partial `json:"partial,omitempty"`
	// Role identifies the serving topology position in the hello frame:
	// "" or "single" for a standalone server, "shard" for one partition of a
	// scatter-gather tier, "coord" for the coordinator fronting it.
	Role string `json:"role,omitempty"`
	// Peers lists, on the hello frame, every address this serving tier may
	// be reached at: the answering server plus its warm standbys. Clients
	// merge unseen entries into their redial address list, so a client
	// that dialed only the primary learns where to go when it dies.
	Peers []string `json:"peers,omitempty"`
}

// encodeMsg marshals a protocol message for the wire.
func encodeMsg(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encode %T: %w", v, err)
	}
	return data, nil
}

// decodeClientMsg parses and validates one client frame.
func decodeClientMsg(data []byte) (*ClientMsg, error) {
	var m ClientMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: decode client message: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// decodeServerMsg parses one server frame.
func decodeServerMsg(data []byte) (*ServerMsg, error) {
	var m ServerMsg
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("server: decode server message: %w", err)
	}
	switch m.Type {
	case MsgHello, MsgSnapshot, MsgError, MsgIngest, MsgReject:
		return &m, nil
	default:
		return nil, fmt.Errorf("server: unknown server message type %q", m.Type)
	}
}
