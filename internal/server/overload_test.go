package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/query"
)

// burstQueries fires n distinct-signature queries back-to-back without
// waiting, returning every handle. The server reads frames far faster than
// queries complete, so inflight depth builds deterministically past any
// admission cap much smaller than n.
func burstQueries(t *testing.T, sess *RemoteSession, base *query.Query, n int) []engine.Handle {
	t.Helper()
	handles := make([]engine.Handle, 0, n)
	for i := 0; i < n; i++ {
		q := *base
		q.Filter = base.Filter.And(query.Predicate{
			Field: base.Bins[0].Field, Op: query.OpIn,
			Values: []string{fmt.Sprintf("burst-%d", i)},
		})
		h, err := sess.StartQuery(&q)
		if err != nil {
			t.Fatalf("burst query %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	return handles
}

func awaitHandles(t *testing.T, handles []engine.Handle) {
	t.Helper()
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("handle %d never completed", i)
		}
	}
}

type rejectedHandle interface {
	Rejected() (bool, time.Duration)
	RejectReason() string
}

// TestPerConnAdmissionReject pins session fairness: a connection bursting
// past its inflight share gets explicit reject frames with a retry hint,
// while admitted queries and the session itself stay healthy.
func TestPerConnAdmissionReject(t *testing.T) {
	f := newFixture(t, Options{MaxInflightPerConn: 4})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()

	handles := burstQueries(t, sess, firstQuery(t, f.flows[0]), 200)
	awaitHandles(t, handles)

	rejected, completed := 0, 0
	for _, h := range handles {
		rh := h.(rejectedHandle)
		if rej, retry := rh.Rejected(); rej {
			rejected++
			if retry <= 0 {
				t.Fatalf("per-conn rejection carries no retry hint")
			}
			if !strings.Contains(rh.RejectReason(), "session query limit") {
				t.Fatalf("reject reason %q, want session query limit", rh.RejectReason())
			}
			if h.Snapshot() != nil {
				t.Fatal("rejected query delivered a snapshot")
			}
			continue
		}
		if snap := h.Snapshot(); snap != nil && snap.Complete {
			completed++
		}
	}
	if rejected == 0 {
		t.Fatal("burst past MaxInflightPerConn=4 produced no rejections")
	}
	if completed == 0 {
		t.Fatal("no query was admitted and completed during the burst")
	}
	if got := f.srv.Counters().RejectedPerConn.Load(); got != int64(rejected) {
		t.Fatalf("RejectedPerConn counter %d, client saw %d", got, rejected)
	}
	if got := rem.Stats().Rejected.Load(); got != int64(rejected) {
		t.Fatalf("client Rejected stat %d, want %d", got, rejected)
	}

	// The defining property of MsgReject: the session is NOT poisoned. A
	// fresh query after the burst completes normally.
	h, err := sess.StartQuery(firstQuery(t, f.flows[0]))
	if err != nil {
		t.Fatalf("post-burst query refused: %v", err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("post-burst query never completed")
	}
	if rej, _ := h.(rejectedHandle).Rejected(); rej {
		t.Fatal("post-burst query rejected on an idle session")
	}
	if snap := h.Snapshot(); snap == nil || !snap.Complete {
		t.Fatal("post-burst query did not deliver a complete final")
	}
}

// TestGlobalAdmissionReject pins the server-wide cap with its distinct
// reject reason.
func TestGlobalAdmissionReject(t *testing.T) {
	f := newFixture(t, Options{MaxInflight: 4, MaxInflightPerConn: 10_000})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()

	handles := burstQueries(t, sess, firstQuery(t, f.flows[0]), 200)
	awaitHandles(t, handles)

	rejected := 0
	for _, h := range handles {
		rh := h.(rejectedHandle)
		if rej, _ := rh.Rejected(); rej {
			rejected++
			if !strings.Contains(rh.RejectReason(), "server query limit") {
				t.Fatalf("reject reason %q, want server query limit", rh.RejectReason())
			}
		}
	}
	if rejected == 0 {
		t.Fatal("burst past MaxInflight=4 produced no rejections")
	}
	if f.srv.Counters().RejectedOverload.Load() != int64(rejected) {
		t.Fatalf("RejectedOverload %d, client saw %d",
			f.srv.Counters().RejectedOverload.Load(), rejected)
	}
	// Admission released its slots: the gauge returns to zero.
	waitFor(t, 10*time.Second, "inflight gauge to drain", func() bool {
		return f.srv.inflight.Load() == 0
	})
}

// TestHandshakeRejectClassification pins the two handshake rejection
// flavors: over-capacity is retryable with a Retry-After hint, draining is
// terminal.
func TestHandshakeRejectClassification(t *testing.T) {
	f := newFixture(t, Options{MaxConns: 1})
	rem, err := NewRemote(f.addr) // takes the only slot
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	_, err = NewRemote(f.addr)
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("over-capacity dial error %v, want HandshakeError", err)
	}
	if he.Status != http.StatusServiceUnavailable || he.Reason != ReasonOverloaded {
		t.Fatalf("handshake error %+v, want 503 %s", he, ReasonOverloaded)
	}
	if he.RetryAfter <= 0 {
		t.Fatal("over-capacity rejection carries no Retry-After")
	}
	if !IsRetryable(err) {
		t.Fatal("over-capacity rejection must be retryable")
	}
	if f.srv.Counters().ConnsRejected.Load() == 0 {
		t.Fatal("ConnsRejected not counted")
	}

	// Drain the server, then dial again: same status, different reason, and
	// the client must classify it terminal.
	f2 := newFixture(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f2.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = NewRemote(f2.addr)
	if !errors.As(err, &he) {
		t.Fatalf("draining dial error %v, want HandshakeError", err)
	}
	if he.Reason != ReasonDraining {
		t.Fatalf("draining reason %q, want %s", he.Reason, ReasonDraining)
	}
	if IsRetryable(err) {
		t.Fatal("draining rejection must be terminal")
	}
}

// TestDeadlineSheddingMarksFinal pins deadline-aware shedding: queries
// carrying a deadline hint that blow their late budget are cancelled
// server-side and their finals arrive marked shed.
func TestDeadlineSheddingMarksFinal(t *testing.T) {
	f := newFixture(t, Options{
		MaxInflight: 100_000, MaxInflightPerConn: 100_000,
		PollInterval: 200 * time.Microsecond,
	})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	sess.SetQueryDeadline(time.Millisecond) // late budget = 2ms at the default factor

	// 300 concurrent distinct-signature consumers contend on the shared
	// scan, so individual completion times far exceed the 2ms budget.
	handles := burstQueries(t, sess, firstQuery(t, f.flows[0]), 300)
	awaitHandles(t, handles)

	shed := 0
	for _, h := range handles {
		if h.(interface{ Shed() bool }).Shed() {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no query was shed despite a 1ms deadline under a 300-query burst")
	}
	if got := f.srv.Counters().ShedLate.Load(); got != int64(shed) {
		t.Fatalf("ShedLate counter %d, client saw %d shed finals", got, shed)
	}

	// Shedding is not an error: the session survives and an undeadlined
	// follow-up completes normally.
	sess.SetQueryDeadline(0)
	h, err := sess.StartQuery(firstQuery(t, f.flows[0]))
	if err != nil {
		t.Fatalf("post-shed query refused: %v", err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("post-shed query never completed")
	}
	if snap := h.Snapshot(); snap == nil || !snap.Complete {
		t.Fatal("post-shed query did not complete")
	}
	if h.(interface{ Shed() bool }).Shed() {
		t.Fatal("undeadlined query was shed")
	}
}

// TestIdleTimeoutReleasesSilentClient is the liveness regression: a client
// that goes silent without any TCP teardown (no FIN, no RST — it just stops
// reading and writing) must be disconnected by the ping/idle deadline and
// its engine resources released.
func TestIdleTimeoutReleasesSilentClient(t *testing.T) {
	f := newFixture(t, Options{
		PingInterval: 20 * time.Millisecond,
		IdleTimeout:  100 * time.Millisecond,
	})
	ws, err := dialWS("ws://"+f.addr+"/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := ws.ReadMessage(); err != nil { // hello
		t.Fatal(err)
	}
	// Issue real queries so the connection holds engine state, then go
	// completely silent: no reads (so no transparent pong replies), no
	// writes, socket left open.
	for i := 0; i < 3; i++ {
		q := *firstQuery(t, f.flows[0])
		q.Filter = q.Filter.And(query.Predicate{
			Field: q.Bins[0].Field, Op: query.OpIn, Values: []string{fmt.Sprintf("silent-%d", i)},
		})
		data, err := encodeMsg(&ClientMsg{Type: MsgQuery, ID: int64(i + 1), Query: &q})
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.WriteMessage(data); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "server to see the connection", func() bool { return f.srv.ConnCount() == 1 })

	waitFor(t, 10*time.Second, "idle disconnect", func() bool {
		return f.srv.Counters().IdleDisconnects.Load() >= 1
	})
	waitFor(t, 10*time.Second, "connection teardown", func() bool { return f.srv.ConnCount() == 0 })
	waitFor(t, 10*time.Second, "scan consumers released", func() bool {
		return f.eng.ActiveScanConsumers() == 0
	})
}

// TestResponsiveClientSurvivesIdleTimeout is the other half of liveness: a
// client with no application traffic but a live read loop answers pings and
// must NOT be disconnected.
func TestResponsiveClientSurvivesIdleTimeout(t *testing.T) {
	f := newFixture(t, Options{
		PingInterval: 15 * time.Millisecond,
		IdleTimeout:  60 * time.Millisecond,
	})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	// Touch the server once so the connection exists, then idle for several
	// idle-timeout windows.
	h, err := sess.StartQuery(firstQuery(t, f.flows[0]))
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done()
	time.Sleep(300 * time.Millisecond)

	if got := f.srv.Counters().IdleDisconnects.Load(); got != 0 {
		t.Fatalf("responsive client idle-disconnected %d times", got)
	}
	h2, err := sess.StartQuery(firstQuery(t, f.flows[0]))
	if err != nil {
		t.Fatalf("query after idle window: %v", err)
	}
	select {
	case <-h2.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("query after idle window never completed")
	}
	if snap := h2.Snapshot(); snap == nil || !snap.Complete {
		t.Fatal("query after idle window did not complete")
	}
}

// TestHealthzOverloadCounters covers the extended health payload.
func TestHealthzOverloadCounters(t *testing.T) {
	f := newFixture(t, Options{MaxInflightPerConn: 2})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	handles := burstQueries(t, sess, firstQuery(t, f.flows[0]), 50)
	awaitHandles(t, handles)

	resp, err := http.Get(f.hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Inflight       int64  `json:"inflight"`
		Watermark      int64  `json:"watermark"`
		ScanConsumers  *int64 `json:"scan_consumers"`
		Admitted       int64  `json:"admitted"`
		RejectedPC     int64  `json:"rejected_per_conn"`
		IdleDisconnect int64  `json:"idle_disconnects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Admitted == 0 {
		t.Fatal("healthz shows no admitted queries after a burst")
	}
	if h.RejectedPC == 0 {
		t.Fatal("healthz shows no per-conn rejections after a burst past the cap")
	}
	if h.Watermark != int64(f.db.Fact.NumRows()) {
		t.Fatalf("healthz watermark %d, want %d", h.Watermark, f.db.Fact.NumRows())
	}
	if h.ScanConsumers == nil {
		t.Fatal("healthz omits scan_consumers for a scan-observing engine")
	}
}
