package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// DialTimeout bounds the TCP connect + WebSocket handshake of one session.
const DialTimeout = 10 * time.Second

// FrameStats counts protocol frames across every session of one Remote, so
// a replay can assert the stream actually streamed (at least one
// intermediate before each final) instead of degenerating into a single
// response per query.
type FrameStats struct {
	Intermediate atomic.Int64 // non-final snapshot frames received
	Final        atomic.Int64 // final snapshot frames received
	Errors       atomic.Int64 // error frames received
	Sessions     atomic.Int64 // sessions (connections) opened
	Ingest       atomic.Int64 // ingest (watermark broadcast) frames received
	Rejected     atomic.Int64 // reject (admission-control) frames received
	Reconnects   atomic.Int64 // successful session reconnects
}

// RemoteOptions tunes client-side resilience.
type RemoteOptions struct {
	// Reconnect enables transparent redial: when a session's connection
	// fails retryably (network fault, idle timeout, capacity close — see
	// IsRetryable), the session re-establishes itself with exponential
	// backoff + jitter and resumes at the last known watermark. In-flight
	// queries at the moment of the loss complete with whatever snapshot they
	// had (their server-side state died with the connection); subsequent
	// queries run on the new connection. Off by default: benchmark replays
	// must fail loudly, not paper over a flaky setup.
	Reconnect bool
	// MaxRetries caps consecutive redial attempts (default 5).
	MaxRetries int
	// BackoffBase is the first retry delay (default 50ms), doubled per
	// attempt up to BackoffMax (default 2s), each sleep jittered uniformly
	// over [d/2, d] so a rejected fleet does not retry in lockstep. A server
	// Retry-After hint raises the floor.
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth (default 2s).
	BackoffMax time.Duration
	// Partials asks the server to attach raw accumulator state
	// (engine.Partial) to every snapshot frame of every query on every
	// session. Scatter-gather coordinators set it; handles then implement
	// engine.PartialSnapshotter with the freshest streamed partial.
	Partials bool
	// Addrs lists alternate addresses the same serving tier is reachable at
	// (warm standbys of the primary passed to NewRemoteWithOptions). Dials
	// and redials walk the combined list round-robin: a failed attempt —
	// retryable or terminal — advances to the next address, so a client
	// pointed at a dead primary finds the standby that took over instead of
	// hammering a corpse. The server's hello Peers list is merged in, so a
	// client that dialed only the primary still learns the standbys.
	Addrs []string
}

func (o RemoteOptions) withDefaults() RemoteOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 5
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	return o
}

// IsRetryable classifies a connection-level failure: true when a fresh
// connection attempt may succeed (overload rejection with a hint, idle
// timeout, network fault), false when retrying cannot help (server
// draining, protocol violation, version mismatch).
func IsRetryable(err error) bool {
	var ce *CloseError
	if errors.As(err, &ce) {
		switch ce.Code {
		case CloseIdleTimeout, CloseTryLater:
			return true
		default:
			// CloseGoingAway (drain) and CloseOverflow (abuse) are terminal.
			return false
		}
	}
	var he *HandshakeError
	if errors.As(err, &he) {
		return he.Status == http.StatusServiceUnavailable && he.Reason != ReasonDraining
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true // timeouts, resets, refused connections
	}
	// An abrupt mid-frame cut surfaces as EOF before the close handshake.
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// retryAfterHint extracts the server's stated backoff from a rejection, 0
// when it stated none.
func retryAfterHint(err error) time.Duration {
	var he *HandshakeError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// jitterSeq disambiguates jitter seeds of Remotes created within the same
// clock tick (a fleet spinning up its clients in a tight loop).
var jitterSeq atomic.Int64

// newJitterRand seeds one client's private jitter source. Backoff jitter
// must NOT come from the shared global math/rand sequence: a fleet of
// clients rejected by the same overloaded server would draw from
// identically-seeded generators and sleep the same "jittered" delays,
// re-arriving in lockstep — the thundering herd the jitter exists to break.
func newJitterRand() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano() ^ jitterSeq.Add(1)<<32))
}

// jitter spreads d uniformly over [d/2, d] using the Remote's own seeded
// source (guarded: rand.Rand is not goroutine-safe and multiple sessions of
// one Remote may back off concurrently).
func (r *Remote) jitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d
	}
	half := d / 2
	r.jmu.Lock()
	n := r.jrng.Int63n(int64(half) + 1)
	r.jmu.Unlock()
	return half + time.Duration(n)
}

// Remote is a network-backed engine.Engine: every method is forwarded over
// the idebench wire protocol to a remote Server. OpenSession dials one
// WebSocket connection per session (the server's session-per-connection
// model), so driver.Runner and driver.MultiRunner replay workflows over the
// network exactly as they do in-process.
type Remote struct {
	opts  RemoteOptions
	name  string
	rows  int64
	seed  int64
	role  string
	stats FrameStats
	// wm tracks the highest watermark any session's ingest frame reported:
	// the remote engine's confirmed data version.
	wm atomic.Int64

	// jrng is this client's private backoff-jitter source (see newJitterRand).
	jmu  sync.Mutex
	jrng *rand.Rand

	// addrs is the dial rotation: the primary address first, then
	// RemoteOptions.Addrs, then any peers learned from hello frames; cur
	// indexes the address the next dial targets. Guarded separately from mu
	// because redial runs while sessions hold their own locks.
	amu   sync.Mutex
	addrs []string
	cur   int

	mu  sync.Mutex
	def *RemoteSession
}

// currentAddr returns the address the next dial attempt targets.
func (r *Remote) currentAddr() string {
	r.amu.Lock()
	defer r.amu.Unlock()
	return r.addrs[r.cur]
}

// advanceAddr rotates to the next address in the dial list.
func (r *Remote) advanceAddr() {
	r.amu.Lock()
	r.cur = (r.cur + 1) % len(r.addrs)
	r.amu.Unlock()
}

// addrCount returns the current dial-list length (it can grow as hello
// frames reveal peers).
func (r *Remote) addrCount() int {
	r.amu.Lock()
	defer r.amu.Unlock()
	return len(r.addrs)
}

// ConnectedAddr reports the remote TCP address the default session is
// currently connected to — after a failover this is the rotation member
// actually serving the session, which the rotation index alone cannot tell.
func (r *Remote) ConnectedAddr() string { return r.def.RemoteAddr() }

// Addrs returns a copy of the current dial rotation, primary-first.
func (r *Remote) Addrs() []string {
	r.amu.Lock()
	defer r.amu.Unlock()
	return append([]string(nil), r.addrs...)
}

// mergePeers appends addresses from a hello Peers list that the rotation
// does not already contain. The server states every address its tier is
// reachable at, so a client that dialed only the primary learns where the
// warm standbys live before it needs them.
func (r *Remote) mergePeers(peers []string) {
	if len(peers) == 0 {
		return
	}
	r.amu.Lock()
	defer r.amu.Unlock()
	for _, p := range peers {
		if p == "" {
			continue
		}
		known := false
		for _, a := range r.addrs {
			if a == p {
				known = true
				break
			}
		}
		if !known {
			r.addrs = append(r.addrs, p)
		}
	}
}

// NewRemote connects to a Server at addr ("host:port") and performs the
// hello exchange on an initial connection, which becomes the engine-level
// default session.
func NewRemote(addr string) (*Remote, error) {
	return NewRemoteWithOptions(addr, RemoteOptions{})
}

// NewRemoteWithOptions is NewRemote with explicit resilience options. addr
// is the preferred (first-dialed) address; opts.Addrs extends the rotation.
func NewRemoteWithOptions(addr string, opts RemoteOptions) (*Remote, error) {
	r := &Remote{opts: opts.withDefaults(), jrng: newJitterRand(), addrs: []string{addr}}
	r.mergePeers(opts.Addrs)
	sess, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.name = sess.engineName
	r.rows = sess.rows
	r.seed = sess.seed
	r.role = sess.role
	r.def = sess
	r.wm.Store(sess.rows)
	return r, nil
}

// Role returns the serving-topology role the server stated in its hello
// frame ("" for a standalone server, "shard" or "coord" in a scatter-gather
// tier).
func (r *Remote) Role() string { return r.role }

// Name implements engine.Engine: the served engine's name, so records from
// a network replay group exactly like the in-process run they compare to.
func (r *Remote) Name() string { return r.name }

// Rows returns the fact-table size the server stated in its hello frame.
func (r *Remote) Rows() int64 { return r.rows }

// Seed returns the dataset seed the server stated in its hello frame
// (0 if the server did not state one).
func (r *Remote) Seed() int64 { return r.seed }

// Stats exposes the frame counters (shared across all sessions).
func (r *Remote) Stats() *FrameStats { return &r.stats }

// Prepare implements engine.Engine. The remote server prepared its engine
// at startup; instead of shipping data, the client checks that the local
// dataset (the ground-truth source) matches what the server stated in its
// hello frame — a row-count or seed mismatch would make every accuracy
// metric silently wrong.
func (r *Remote) Prepare(db *dataset.Database, opts engine.Options) error {
	if r.rows > 0 && db != nil && int64(db.Fact.NumRows()) != r.rows {
		return fmt.Errorf("server: remote engine is prepared for %d rows, local dataset has %d",
			r.rows, db.Fact.NumRows())
	}
	if r.seed != 0 && opts.Seed != 0 && opts.Seed != r.seed {
		return fmt.Errorf("server: remote engine is prepared with seed %d, local run uses seed %d",
			r.seed, opts.Seed)
	}
	return nil
}

// OpenSession implements engine.Engine by dialing a dedicated connection.
// Session interfaces cannot fail, so a dial error surfaces on the session's
// first StartQuery.
func (r *Remote) OpenSession() engine.Session {
	sess, err := r.dial()
	if err != nil {
		return &RemoteSession{dialErr: err}
	}
	return sess
}

// dialConn performs one connection attempt against the rotation's current
// address: handshake, hello exchange, version check. No retries — callers
// decide the retry policy. A successful hello merges the server's Peers
// into the dial rotation.
func (r *Remote) dialConn() (*WSConn, *ServerMsg, error) {
	ws, err := dialWS("ws://"+r.currentAddr()+"/ws", DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	data, err := ws.ReadMessage()
	if err != nil {
		ws.Close()
		return nil, nil, fmt.Errorf("server: reading hello: %w", err)
	}
	hello, err := decodeServerMsg(data)
	if err != nil {
		ws.Close()
		return nil, nil, err
	}
	if hello.Type != MsgHello {
		ws.Close()
		return nil, nil, fmt.Errorf("server: expected hello, got %q", hello.Type)
	}
	if hello.Version != ProtoVersion {
		ws.Close()
		return nil, nil, fmt.Errorf("server: protocol version %d, client speaks %d", hello.Version, ProtoVersion)
	}
	r.mergePeers(hello.Peers)
	return ws, hello, nil
}

// redial retries dialConn after a connection failure with exponential
// backoff + jitter, honoring any server Retry-After hint as the floor.
//
// With a multi-address rotation every failed attempt — retryable or
// terminal — advances to the next address before retrying: a kill -9'd
// primary refuses connections (retryable), a drained one closes with
// GoingAway (terminal), and either way the answer lives at a standby, not
// in hammering the same address. The attempt budget scales with the
// rotation length so each address gets its MaxRetries; a full lap of
// terminal failures — every address refused for a reason retrying cannot
// fix — gives up at once, preserving the single-address contract that a
// terminal error is returned without any retry.
func (r *Remote) redial(cause error) (*WSConn, *ServerMsg, error) {
	err := cause
	backoff := r.opts.BackoffBase
	if ra := retryAfterHint(err); ra > backoff {
		backoff = ra
	}
	terminalLap := 0
	for attempt := 0; attempt < r.opts.MaxRetries*r.addrCount(); attempt++ {
		n := r.addrCount()
		if !IsRetryable(err) {
			terminalLap++
			if terminalLap >= n {
				return nil, nil, err
			}
		} else {
			terminalLap = 0
		}
		if n > 1 {
			r.advanceAddr()
		}
		time.Sleep(r.jitter(backoff))
		var ws *WSConn
		var hello *ServerMsg
		ws, hello, err = r.dialConn()
		if err == nil {
			return ws, hello, nil
		}
		if ra := retryAfterHint(err); ra > backoff {
			backoff = ra
		}
		backoff *= 2
		if backoff > r.opts.BackoffMax {
			backoff = r.opts.BackoffMax
		}
	}
	return nil, nil, err
}

func (r *Remote) dial() (*RemoteSession, error) {
	ws, hello, err := r.dialConn()
	if err != nil && r.opts.Reconnect {
		ws, hello, err = r.redial(err)
	}
	if err != nil {
		return nil, err
	}
	s := &RemoteSession{
		ws:         ws,
		rem:        r,
		stats:      &r.stats,
		wm:         &r.wm,
		engineName: hello.Engine,
		rows:       hello.Rows,
		seed:       hello.Seed,
		role:       hello.Role,
		partials:   r.opts.Partials,
		handles:    make(map[int64]*remoteHandle),
		readDone:   make(chan struct{}),
	}
	r.stats.Sessions.Add(1)
	go s.readLoop()
	return s, nil
}

// StartQuery implements engine.Engine on the default session.
func (r *Remote) StartQuery(q *query.Query) (engine.Handle, error) { return r.def.StartQuery(q) }

// LinkVizs implements engine.Engine on the default session.
func (r *Remote) LinkVizs(from, to string) { r.def.LinkVizs(from, to) }

// DeleteViz implements engine.Engine on the default session.
func (r *Remote) DeleteViz(name string) { r.def.DeleteViz(name) }

// WorkflowStart implements engine.Engine on the default session.
func (r *Remote) WorkflowStart() { r.def.WorkflowStart() }

// WorkflowEnd implements engine.Engine on the default session.
func (r *Remote) WorkflowEnd() { r.def.WorkflowEnd() }

// Close closes the default session's connection. Sessions from OpenSession
// are closed by their users (the driver defers sess.Close per user).
func (r *Remote) Close() { r.def.Close() }

// Ingest ships one batch to the server over the default session. The call
// is asynchronous: the server's ingest broadcast (on every session)
// confirms application and advances Watermark. A server-side rejection of
// an earlier frame (engine without the append capability, draining,
// malformed batch) arrives as an error frame on the default session and
// fails the next Ingest call here, so a feeder cannot keep pumping batches
// into a void.
func (r *Remote) Ingest(b *ingest.Batch) error {
	if err := r.def.Err(); err != nil {
		return err
	}
	return r.def.send(&ClientMsg{Type: MsgIngest, Batch: b})
}

// Err surfaces the first connection- or server-reported error on the
// default session (ingest rejections land here: ingest frames carry no
// query id, so no handle observes them).
func (r *Remote) Err() error { return r.def.Err() }

// ApplyBatch implements ingest.Sink, so a Remote slots into an
// ingest.Harness exactly like an in-process engine: the client-side harness
// owns the ground-truth lineage while the server's engine absorbs the same
// batches.
func (r *Remote) ApplyBatch(b *ingest.Batch, _ *dataset.Table) error { return r.Ingest(b) }

// Watermark returns the highest data version the server has confirmed via
// ingest broadcasts (the prepared row count before any ingestion).
func (r *Remote) Watermark() int64 { return r.wm.Load() }

// PingTimeout bounds one Ping health probe — short, because the health loop
// that calls it runs serially over every replica and a hung probe must not
// stall the whole pass.
const PingTimeout = 2 * time.Second

// Ping implements the coordinator's health-probe capability (shard.Pinger):
// one HTTP GET of the server's /healthz over a fresh connection, so it
// reflects current reachability rather than the state of a long-lived
// WebSocket that may have died silently.
func (r *Remote) Ping() error {
	c := &http.Client{Timeout: PingTimeout}
	resp, err := c.Get("http://" + r.currentAddr() + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: healthz status %s", resp.Status)
	}
	return nil
}

var (
	_ engine.Engine = (*Remote)(nil)
	_ ingest.Sink   = (*Remote)(nil)
)

// RemoteSession is one WebSocket connection speaking the wire protocol —
// the client half of the server's session-per-connection model.
type RemoteSession struct {
	rem        *Remote // owning Remote (nil only in tests); reconnect policy
	stats      *FrameStats
	wm         *atomic.Int64 // shared watermark tracker (nil for bare sessions)
	engineName string
	rows       int64
	seed       int64
	role       string
	partials   bool // request raw partials on every query
	dialErr    error

	mu       sync.Mutex
	ws       *WSConn // current connection; swapped under mu on reconnect
	nextID   int64
	handles  map[int64]*remoteHandle
	err      error // first connection-level failure
	closed   bool
	deadline time.Duration // attached to query frames as DeadlineMS
	// reconnecting is true from the moment a connection loss is being
	// handled until the replacement connection is installed (or the session
	// fails/closes). While set, ws still points at the DEAD connection — and
	// a write to a socket that received the peer's FIN succeeds silently
	// into the kernel buffer, losing the frame without an error. Senders
	// must therefore wait the flag out (liveConn) instead of writing.
	reconnecting bool
	sendCond     *sync.Cond // lazily made; broadcast when senders may proceed

	readDone chan struct{}
}

// conn returns the session's current connection (reconnects swap it). Only
// the readLoop — the goroutine that performs reconnects — may use it to do
// I/O; frame writers go through liveConn.
func (s *RemoteSession) conn() *WSConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ws
}

// wakeSenders unblocks goroutines waiting in liveConn. Callers hold s.mu.
func (s *RemoteSession) wakeSenders() {
	if s.sendCond != nil {
		s.sendCond.Broadcast()
	}
}

// liveConn returns the connection an outgoing frame should be written to,
// waiting out an in-progress reconnect: between a connection loss and the
// swap-in of its replacement, ws points at a dead socket that can swallow a
// write without an error (the first write after the peer's FIN lands in the
// kernel buffer and vanishes with the RST). Returns the session error when
// the loss proved terminal, so a blocked sender fails loudly instead.
func (s *RemoteSession) liveConn() (*WSConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.reconnecting && !s.closed && s.err == nil {
		if s.sendCond == nil {
			s.sendCond = sync.NewCond(&s.mu)
		}
		s.sendCond.Wait()
	}
	if s.closed {
		return nil, ErrWSClosed
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.ws, nil
}

// RemoteAddr reports the TCP peer of the session's current connection, ""
// when the session never connected.
func (s *RemoteSession) RemoteAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ws == nil {
		return ""
	}
	return s.ws.conn.RemoteAddr().String()
}

// SetQueryDeadline attaches d as the deadline hint (ClientMsg.DeadlineMS)
// to every subsequent query on this session, arming the server's
// deadline-aware shedding for them. 0 (the default) sends no hint.
func (s *RemoteSession) SetQueryDeadline(d time.Duration) {
	s.mu.Lock()
	s.deadline = d
	s.mu.Unlock()
}

// readLoop dispatches server frames to their handles until the connection
// drops, then — if the loss is retryable and reconnection is enabled —
// re-establishes the connection and keeps going, otherwise fails every
// outstanding handle.
func (s *RemoteSession) readLoop() {
	defer close(s.readDone)
	for {
		data, err := s.conn().ReadMessage()
		if err != nil {
			if s.tryReconnect(err) {
				continue
			}
			s.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		m, err := decodeServerMsg(data)
		if err != nil {
			s.fail(err)
			s.conn().Close()
			return
		}
		switch m.Type {
		case MsgSnapshot:
			if m.Final {
				s.stats.Final.Add(1)
			} else {
				s.stats.Intermediate.Add(1)
			}
			s.mu.Lock()
			h := s.handles[m.ID]
			if m.Final {
				delete(s.handles, m.ID)
			}
			s.mu.Unlock()
			if h != nil {
				if m.Final && m.Shed {
					h.markShed()
				}
				if m.Partial != nil {
					h.setPartial(m.Partial)
				}
				h.deliver(m.Result, m.Final)
			}
		case MsgError:
			s.stats.Errors.Add(1)
			s.mu.Lock()
			h := s.handles[m.ID]
			delete(s.handles, m.ID)
			if s.err == nil {
				if m.ID == 0 {
					// Not tied to a query handle (an ingest rejection).
					s.err = fmt.Errorf("server: %s", m.Error)
				} else {
					s.err = fmt.Errorf("server: query %d: %s", m.ID, m.Error)
				}
			}
			s.mu.Unlock()
			if h != nil {
				h.deliver(nil, true)
			}
		case MsgReject:
			// Admission control, not failure: the handle completes empty and
			// reports why; the session stays healthy for the next query.
			s.stats.Rejected.Add(1)
			s.mu.Lock()
			h := s.handles[m.ID]
			delete(s.handles, m.ID)
			s.mu.Unlock()
			if h != nil {
				h.reject(m.Error, time.Duration(m.RetryMS)*time.Millisecond)
			}
		case MsgIngest:
			s.stats.Ingest.Add(1)
			if s.wm != nil {
				casMax(s.wm, m.Watermark)
			}
		case MsgHello:
			// Duplicate hello: harmless.
		}
	}
}

// casMax raises w to v if v is higher (monotone max: broadcasts from
// different sessions may arrive out of order).
func casMax(w *atomic.Int64, v int64) {
	for {
		cur := w.Load()
		if v <= cur || w.CompareAndSwap(cur, v) {
			return
		}
	}
}

// tryReconnect handles a connection loss under the Reconnect policy: it
// completes in-flight handles (their server-side state died with the
// connection), redials with backoff + jitter, and swaps in the fresh
// connection. Returns false when reconnection is off, the loss is terminal
// (IsRetryable), the session was closed locally, or retries ran out — the
// caller then fails the session. The shared watermark survives the swap:
// queries on the new connection answer against at least the last version
// any session confirmed.
func (s *RemoteSession) tryReconnect(cause error) bool {
	if s.rem == nil || !s.rem.opts.Reconnect || !IsRetryable(cause) {
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	// Senders block from here until the replacement connection is in (or
	// fail clears the flag): queries started during the redial must go out
	// on the NEW connection, not silently into the dead one.
	s.reconnecting = true
	s.mu.Unlock()
	s.completeHandles()
	ws, hello, err := s.rem.redial(cause)
	if err != nil {
		// Leave reconnecting set: the caller fails the session next, which
		// clears it with err installed, so woken senders see the error and
		// never the dead connection.
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.reconnecting = false
		s.wakeSenders()
		s.mu.Unlock()
		ws.Close()
		return false
	}
	s.ws = ws
	s.reconnecting = false
	s.wakeSenders()
	s.mu.Unlock()
	if s.wm != nil {
		casMax(s.wm, hello.Rows)
	}
	s.rem.stats.Reconnects.Add(1)
	return true
}

// completeHandles closes every outstanding handle with whatever snapshot it
// had, without poisoning the session.
func (s *RemoteSession) completeHandles() {
	s.mu.Lock()
	handles := s.handles
	s.handles = make(map[int64]*remoteHandle)
	s.mu.Unlock()
	for _, h := range handles {
		h.deliver(nil, true)
	}
}

// fail marks the session broken and completes all outstanding handles so no
// driver goroutine blocks on a dead connection.
func (s *RemoteSession) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.reconnecting = false
	s.wakeSenders()
	s.mu.Unlock()
	s.completeHandles()
}

// Err returns the first connection-level or per-query error the session
// observed. A per-query error frame completes its own handle with no
// result AND poisons the session: subsequent StartQuery calls return the
// stored error, so a replay fails loudly at the next interaction instead
// of silently recording garbage metrics against a broken setup (benchmark
// queries are machine-generated; an engine-side rejection means the run
// configuration is wrong, not that one query was unlucky).
func (s *RemoteSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// send marshals and writes one client message on the live connection,
// waiting out a reconnect in progress.
func (s *RemoteSession) send(m *ClientMsg) error {
	data, err := encodeMsg(m)
	if err != nil {
		return err
	}
	ws, err := s.liveConn()
	if err != nil {
		return err
	}
	return ws.WriteMessage(data)
}

// StartQuery implements engine.Session. It is asynchronous like its
// in-process counterpart: the message goes out, the handle fills in as
// snapshot frames arrive. Queries are validated locally first so malformed
// queries fail fast without a round trip.
func (s *RemoteSession) StartQuery(q *query.Query) (engine.Handle, error) {
	if s.dialErr != nil {
		return nil, s.dialErr
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrWSClosed
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return nil, err
	}
	s.nextID++
	id := s.nextID
	deadlineMS := int64(s.deadline / time.Millisecond)
	h := &remoteHandle{sess: s, id: id, done: make(chan struct{})}
	s.handles[id] = h
	s.mu.Unlock()

	if err := s.send(&ClientMsg{Type: MsgQuery, ID: id, Query: q, DeadlineMS: deadlineMS, Partials: s.partials}); err != nil {
		s.mu.Lock()
		delete(s.handles, id)
		s.mu.Unlock()
		return nil, err
	}
	return h, nil
}

// LinkVizs implements engine.Session (fire-and-forget, like the in-process
// call which has no error return).
func (s *RemoteSession) LinkVizs(from, to string) {
	if s.dialErr == nil {
		s.send(&ClientMsg{Type: MsgLink, From: from, To: to})
	}
}

// DeleteViz implements engine.Session.
func (s *RemoteSession) DeleteViz(name string) {
	if s.dialErr == nil {
		s.send(&ClientMsg{Type: MsgDeleteViz, Name: name})
	}
}

// WorkflowStart implements engine.Session.
func (s *RemoteSession) WorkflowStart() {
	if s.dialErr == nil {
		s.send(&ClientMsg{Type: MsgWorkflowStart})
	}
}

// WorkflowEnd implements engine.Session.
func (s *RemoteSession) WorkflowEnd() {
	if s.dialErr == nil {
		s.send(&ClientMsg{Type: MsgWorkflowEnd})
	}
}

// Close implements engine.Session: it closes the connection, which makes
// the server cancel in-flight queries and release the session's resources.
func (s *RemoteSession) Close() {
	if s.dialErr != nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ws := s.ws
	s.wakeSenders()
	s.mu.Unlock()
	ws.Close()
	<-s.readDone
}

var _ engine.Session = (*RemoteSession)(nil)

// remoteHandle is the client-side engine.Handle of one in-flight query:
// Snapshot returns the freshest streamed result, Done closes on the final
// frame, Cancel asks the server to stop (the final frame still closes Done).
type remoteHandle struct {
	sess *RemoteSession
	id   int64

	mu        sync.RWMutex
	res       *query.Result
	partial   *engine.Partial
	rejected  bool
	rejReason string
	rejRetry  time.Duration
	shed      bool
	done      chan struct{}
	once      sync.Once
}

// deliver installs a streamed snapshot. Final frames may carry nil (a query
// cancelled before any rows, or a server-side error); the last good
// intermediate then remains the fetchable result.
func (h *remoteHandle) deliver(res *query.Result, final bool) {
	h.mu.Lock()
	if res != nil {
		h.res = res
	}
	h.mu.Unlock()
	if final {
		h.once.Do(func() { close(h.done) })
	}
}

// reject completes the handle as refused at admission.
func (h *remoteHandle) reject(reason string, retry time.Duration) {
	h.mu.Lock()
	h.rejected = true
	h.rejReason = reason
	h.rejRetry = retry
	h.mu.Unlock()
	h.once.Do(func() { close(h.done) })
}

// markShed records that the final snapshot came from deadline-aware
// shedding (the server cancelled the late query; the result is the partial
// estimate at the cancel).
func (h *remoteHandle) markShed() {
	h.mu.Lock()
	h.shed = true
	h.mu.Unlock()
}

// Rejected reports whether the server refused this query at admission
// control, and the backoff it suggested (0 = terminal rejection). Load
// generators use it to tell explicit rejections from failures.
func (h *remoteHandle) Rejected() (bool, time.Duration) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rejected, h.rejRetry
}

// RejectReason returns the server's stated rejection reason ("" when the
// query was admitted).
func (h *remoteHandle) RejectReason() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.rejReason
}

// Shed reports whether the final result was cut short by deadline-aware
// shedding rather than run to completion.
func (h *remoteHandle) Shed() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.shed
}

// setPartial installs the freshest streamed raw accumulator state.
func (h *remoteHandle) setPartial(p *engine.Partial) {
	h.mu.Lock()
	h.partial = p
	h.mu.Unlock()
}

// PartialSnapshot implements engine.PartialSnapshotter: the latest raw
// partial the server streamed, nil until the first frame carrying one (or
// forever, when the session did not request partials).
func (h *remoteHandle) PartialSnapshot() *engine.Partial {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.partial
}

// Snapshot implements engine.Handle.
func (h *remoteHandle) Snapshot() *query.Result {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.res
}

// Done implements engine.Handle.
func (h *remoteHandle) Done() <-chan struct{} { return h.done }

// Cancel implements engine.Handle: best-effort, idempotent on the server.
func (h *remoteHandle) Cancel() {
	h.sess.mu.Lock()
	closed := h.sess.closed
	h.sess.mu.Unlock()
	select {
	case <-h.done:
		return // already final; nothing to cancel
	default:
	}
	if !closed {
		h.sess.send(&ClientMsg{Type: MsgCancel, ID: h.id})
	}
}

var _ engine.Handle = (*remoteHandle)(nil)
