package server

import (
	"reflect"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/faultnet"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// chaosCountQuery builds a deterministic COUNT-by-nominal query so quiesced
// results can be compared bitwise (integral counts have no fold-order
// noise).
func chaosCountQuery(t *testing.T, db *dataset.Database) *query.Query {
	t.Helper()
	for _, fld := range db.Fact.Schema.Fields {
		if fld.Kind == dataset.Nominal {
			return &query.Query{
				VizName: "chaos-count",
				Table:   db.Fact.Name,
				Bins:    []query.Binning{{Field: fld.Name, Kind: dataset.Nominal}},
				Aggs:    []query.Aggregate{{Func: query.Count}},
			}
		}
	}
	t.Fatal("fact table has no nominal field")
	return nil
}

// finalResult runs q on sess to completion and returns the final snapshot.
func finalResult(t *testing.T, sess engine.Session, q *query.Query) *query.Result {
	t.Helper()
	h, err := sess.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("query never completed")
	}
	res := h.Snapshot()
	if res == nil || !res.Complete {
		t.Fatalf("query did not deliver a complete final: %+v", res)
	}
	return res
}

// TestChaosKillClientMidQuery kills the whole client population with RSTs
// while queries stream, and asserts the zero-leak invariant: every shared
// scan consumer is released and the server forgets the connections.
func TestChaosKillClientMidQuery(t *testing.T) {
	f := newFixture(t, Options{PollInterval: time.Millisecond})
	px, err := faultnet.New(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	rem, err := NewRemote(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	stop := make(chan struct{})
	collect := pumpQueries(t, sess, firstQuery(t, f.flows[0]), stop)

	waitFor(t, 10*time.Second, "consumers to attach", func() bool { return f.eng.ActiveScanConsumers() > 0 })
	px.ResetAll() // mid-query, mid-frame: abortive close, no WS handshake
	close(stop)
	handles := collect()

	waitFor(t, 10*time.Second, "scan consumers released", func() bool { return f.eng.ActiveScanConsumers() == 0 })
	waitFor(t, 10*time.Second, "server to forget connections", func() bool { return f.srv.ConnCount() == 0 })
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("handle %d still pending after chaos kill", i)
		}
	}
	// The server survived: a fresh direct client completes a query.
	rem2, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem2.Close()
	finalResult(t, rem2.OpenSession(), chaosCountQuery(t, f.db))
}

// TestChaosKillClientMidIngest cuts the feeder mid-frame with an RST and
// asserts the ingest atomicity contract: the watermark lands exactly on a
// batch boundary (no torn batch), and the quiesced server answers bitwise
// identically to a cold engine prepared on the same surviving batches.
func TestChaosKillClientMidIngest(t *testing.T) {
	f := newFixture(t, Options{})
	f.srv.opts.Apply = ingest.NewApplier(f.db, f.eng).Apply
	base := int64(f.db.Fact.NumRows())
	const batchRows = 500

	px, err := faultnet.New(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	feeder, err := NewRemote(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer feeder.Close()

	// Deterministic batch sequence the reconstruction below can replay.
	batch := func(i int) *ingest.Batch {
		lo := (i * batchRows) % (int(base) - batchRows)
		return ingest.FromTable(f.db.Fact, lo, lo+batchRows)
	}
	feedErr := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			if err := feeder.Ingest(batch(i)); err != nil {
				feedErr <- err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Let a couple of batches land, then arm a mid-frame reset: the next
	// 16KiB chunk forwards and the connection dies by RST with the rest of
	// the frame undelivered.
	waitFor(t, 10*time.Second, "batches to apply", func() bool {
		return f.eng.Watermark() >= base+2*batchRows
	})
	px.SetFaults(faultnet.Faults{ResetAfterBytes: 1}, faultnet.Faults{})
	select {
	case <-feedErr:
	case <-time.After(10 * time.Second):
		t.Fatal("feeder survived the injected reset")
	}
	waitFor(t, 10*time.Second, "server to forget the feeder", func() bool { return f.srv.ConnCount() == 0 })

	// Atomicity: whatever was applied is a whole number of batches.
	wm := f.eng.Watermark()
	if wm < base || (wm-base)%batchRows != 0 {
		t.Fatalf("watermark %d not on a batch boundary (base %d, batch %d)", wm, base, batchRows)
	}
	applied := int((wm - base) / batchRows)

	// A fresh direct client sees the quiesced watermark in its hello and in
	// its results.
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if rem.Rows() != wm {
		t.Fatalf("fresh hello rows %d, want quiesced watermark %d", rem.Rows(), wm)
	}
	q := chaosCountQuery(t, f.db)
	got := finalResult(t, rem.OpenSession(), q)

	// Cold prepare on the same surviving batch prefix must agree bitwise.
	db2 := testDBCopy(t)
	app := dataset.NewTableAppender(db2.Fact, true)
	for i := 0; i < applied; i++ {
		rows, err := ingest.Materialize(db2, batch(i))
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := app.Append(rows)
		if err != nil {
			t.Fatal(err)
		}
		db2.Fact = tbl
	}
	eng2 := progressive.New(progressive.Config{})
	if err := eng2.Prepare(db2, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	cold := eng2.OpenSession()
	defer cold.Close()
	want := finalResult(t, cold, q)

	if got.Watermark != wm || got.TotalRows != wm {
		t.Fatalf("quiesced result watermark/total = %d/%d, want %d", got.Watermark, got.TotalRows, wm)
	}
	if !reflect.DeepEqual(got.Bins, want.Bins) {
		t.Fatalf("quiesced result diverges from cold prepare:\n got %v\nwant %v", got.Bins, want.Bins)
	}
	if n := f.eng.ActiveScanConsumers(); n != 0 {
		t.Fatalf("leaked %d scan consumers after chaos ingest", n)
	}
}

// testDBCopy rebuilds the fixture's dataset deterministically (same
// generator, same seed — identical bytes).
func testDBCopy(t *testing.T) *dataset.Database {
	t.Helper()
	db, err := core.BuildData(testRows, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestChaosSlowReaderDoesNotStallOthers throttles one client's read side to
// a trickle while it streams queries; the server must coalesce rather than
// block, other clients must stay interactive, and nothing may leak when the
// slow client leaves.
func TestChaosSlowReaderDoesNotStallOthers(t *testing.T) {
	f := newFixture(t, Options{PollInterval: time.Millisecond})
	px, err := faultnet.New(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	// 8 KiB/s toward the client: snapshot frames queue server-side
	// immediately.
	px.SetFaults(faultnet.Faults{}, faultnet.Faults{ThrottleBytesPerSec: 8 << 10})

	slow, err := NewRemote(px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	sess := slow.OpenSession().(*RemoteSession)
	stop := make(chan struct{})
	collect := pumpQueries(t, sess, firstQuery(t, f.flows[0]), stop)
	waitFor(t, 10*time.Second, "slow client to attach", func() bool { return f.eng.ActiveScanConsumers() > 0 })

	// Another client on a clean path completes promptly despite the hog.
	fast, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	t0 := time.Now()
	finalResult(t, fast.OpenSession(), chaosCountQuery(t, f.db))
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("fast client took %v behind a slow reader", d)
	}

	close(stop)
	sess.Close()
	collect()
	waitFor(t, 10*time.Second, "scan consumers released", func() bool { return f.eng.ActiveScanConsumers() == 0 })
}

// TestChaosReconnectThroughFaults drives a reconnecting client through a
// lossy, laggy proxy and repeatedly RSTs every connection: the session must
// resurface each time with backoff, keep its watermark, and leave nothing
// behind.
func TestChaosReconnectThroughFaults(t *testing.T) {
	f := newFixture(t, Options{})
	px, err := faultnet.New(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	px.SetFaults(
		faultnet.Faults{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
		faultnet.Faults{Latency: time.Millisecond, Jitter: 2 * time.Millisecond},
	)

	rem, err := NewRemoteWithOptions(px.Addr(), RemoteOptions{Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	sess := rem.OpenSession().(*RemoteSession)
	defer sess.Close()
	q := chaosCountQuery(t, f.db)
	wm := rem.Watermark()

	for round := 0; round < 3; round++ {
		finalResult(t, sess, q)
		px.ResetAll()
		// The read loop notices the RST and redials with backoff; queries
		// racing the swap can fail their send — retry until the session is
		// back.
		waitFor(t, 20*time.Second, "session to reconnect", func() bool {
			h, err := sess.StartQuery(q)
			if err != nil {
				return false
			}
			select {
			case <-h.Done():
			case <-time.After(10 * time.Second):
				return false
			}
			snap := h.Snapshot()
			return snap != nil && snap.Complete
		})
	}
	if got := rem.Stats().Reconnects.Load(); got < 3 {
		t.Fatalf("Reconnects = %d, want >= 3 after 3 injected resets", got)
	}
	if sess.Err() != nil {
		t.Fatalf("session poisoned by retryable faults: %v", sess.Err())
	}
	if got := rem.Watermark(); got < wm {
		t.Fatalf("watermark went backwards across reconnects: %d < %d", got, wm)
	}
	sess.Close()
	waitFor(t, 10*time.Second, "scan consumers released", func() bool { return f.eng.ActiveScanConsumers() == 0 })
	waitFor(t, 10*time.Second, "connections to drain", func() bool { return f.srv.ConnCount() <= 1 })
}
