package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestHealthSchemaVersioned asserts the /healthz document is the exported,
// versioned Health struct: it decodes into it, states the current schema
// version and wire protocol version, and carries no topology block for a
// standalone engine.
func TestHealthSchemaVersioned(t *testing.T) {
	f := newFixture(t, Options{})
	resp, err := http.Get(f.hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.SchemaVersion != HealthSchemaVersion {
		t.Errorf("schema_version = %d, want %d", h.SchemaVersion, HealthSchemaVersion)
	}
	if h.Version != ProtoVersion {
		t.Errorf("version = %d, want %d", h.Version, ProtoVersion)
	}
	if h.Topology != nil {
		t.Errorf("standalone server reported a topology block: %+v", h.Topology)
	}
}

// TestRebalanceEndpoint covers the admin endpoint: wired, it validates the
// op, forwards to the hook, and maps hook errors to 409; unwired, it 404s.
func TestRebalanceEndpoint(t *testing.T) {
	var got []RebalanceRequest
	f := newFixture(t, Options{Rebalance: func(req RebalanceRequest) error {
		got = append(got, req)
		if req.Op == "remove" {
			return fmt.Errorf("refusing to remove the last replica")
		}
		return nil
	}})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(f.hsrv.URL+"/rebalance", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"op":"add","partition":1,"addr":"127.0.0.1:9999"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	if len(got) != 1 || got[0].Op != "add" || got[0].Partition != 1 || got[0].Addr != "127.0.0.1:9999" {
		t.Fatalf("hook saw %+v", got)
	}
	if resp := post(`{"op":"remove","partition":0,"name":"p0/r0/x"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("hook error status = %d, want 409", resp.StatusCode)
	}
	if resp := post(`{"op":"shuffle"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op status = %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(f.hsrv.URL + "/rebalance"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}

	// Without the hook the endpoint does not exist.
	plain := newFixture(t, Options{})
	resp, err := http.Post(plain.hsrv.URL+"/rebalance", "application/json", bytes.NewBufferString(`{"op":"add"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unwired status = %d, want 404", resp.StatusCode)
	}
}

// TestRemotePing asserts the client-side health probe reflects actual
// reachability: OK against a live server, an error once it is gone.
func TestRemotePing(t *testing.T) {
	f := newFixture(t, Options{})
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if err := rem.Ping(); err != nil {
		t.Fatalf("ping against live server: %v", err)
	}
	f.hsrv.Close()
	if err := rem.Ping(); err == nil {
		t.Fatal("ping against a dead server succeeded")
	}
}
