package server

import (
	"testing"
	"time"
)

// TestJitterBounds pins the jitter contract: each sleep lands uniformly in
// [d/2, d], and sub-millisecond delays pass through unjittered.
func TestJitterBounds(t *testing.T) {
	r := &Remote{jrng: newJitterRand()}
	d := 2 * time.Second
	for i := 0; i < 200; i++ {
		j := r.jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
	}
	if got := r.jitter(time.Millisecond); got != time.Millisecond {
		t.Errorf("tiny delay should pass through, got %v", got)
	}
}

// TestJitterIndependentAcrossClients is the thundering-herd regression: two
// freshly created clients must not draw the same jitter sequence. The old
// implementation pulled from the process-global math/rand, so separate client
// processes (each with the same default seeding) backed off in lockstep after
// a mass rejection, re-arriving at the server as the same herd that was just
// turned away.
func TestJitterIndependentAcrossClients(t *testing.T) {
	a := &Remote{jrng: newJitterRand()}
	b := &Remote{jrng: newJitterRand()}
	d := 2 * time.Second
	for i := 0; i < 64; i++ {
		if a.jitter(d) != b.jitter(d) {
			return
		}
	}
	// 64 identical draws from [1s, 2s] at nanosecond granularity means the
	// sources share a seed, not that we got unlucky.
	t.Error("two fresh clients drew identical jitter sequences")
}
