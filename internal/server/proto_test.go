package server

import (
	"reflect"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// testQuery builds a representative query exercising every proto-visible
// field: 2D binning, multiple aggregates, IN + range predicates.
func testQuery() *query.Query {
	return &query.Query{
		VizName: "viz_3",
		Table:   "flights",
		Bins: []query.Binning{
			{Field: "carrier", Kind: dataset.Nominal},
			{Field: "distance", Kind: dataset.Quantitative, Width: 250, Origin: 0},
		},
		Aggs: []query.Aggregate{
			{Func: query.Count},
			{Func: query.Avg, Field: "arr_delay"},
		},
		Filter: query.Filter{Predicates: []query.Predicate{
			{Field: "origin", Op: query.OpIn, Values: []string{"BOS", "SFO"}},
			{Field: "dep_delay", Op: query.OpRange, Lo: -10, Hi: 60},
		}},
	}
}

func testResult() *query.Result {
	r := query.NewResult()
	r.RowsSeen = 1234
	r.TotalRows = 50000
	r.Bins[query.BinKey{A: 3, B: 1}] = &query.BinValue{Values: []float64{17, 4.25}, Margins: []float64{0, 1.5}}
	r.Bins[query.BinKey{A: -2, B: 0}] = &query.BinValue{Values: []float64{9, -3}, Margins: []float64{0, 0.75}}
	return r
}

// TestClientMsgRoundTrip proves every client message type survives
// encode→decode bit-for-bit, including the embedded query.Query.
func TestClientMsgRoundTrip(t *testing.T) {
	msgs := []*ClientMsg{
		{Type: MsgQuery, ID: 7, Query: testQuery()},
		{Type: MsgCancel, ID: 7},
		{Type: MsgLink, From: "viz_1", To: "viz_2"},
		{Type: MsgDeleteViz, Name: "viz_1"},
		{Type: MsgWorkflowStart},
		{Type: MsgWorkflowEnd},
	}
	for _, m := range msgs {
		data, err := encodeMsg(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := decodeClientMsg(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\n  sent %+v\n  got  %+v", m.Type, m, got)
		}
	}
}

// TestQuerySignatureSurvivesWire asserts the decoded query is semantically
// the query that was sent: the signature (ground-truth cache key) must not
// change crossing the wire, or remote replays would evaluate against the
// wrong reference.
func TestQuerySignatureSurvivesWire(t *testing.T) {
	q := testQuery()
	data, err := encodeMsg(&ClientMsg{Type: MsgQuery, ID: 1, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeClientMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Query.Signature() != q.Signature() {
		t.Errorf("signature changed over the wire:\n  sent %s\n  got  %s", q.Signature(), got.Query.Signature())
	}
}

// TestServerMsgRoundTrip proves server frames (hello, snapshot, error)
// survive the wire, including the embedded query.Result with its custom
// bin-key JSON encoding.
func TestServerMsgRoundTrip(t *testing.T) {
	msgs := []*ServerMsg{
		{Type: MsgHello, Version: ProtoVersion, Engine: "progressive", Rows: 50000, Seed: 7},
		{Type: MsgHello, Version: ProtoVersion, Engine: "progressive", Rows: 50000, Seed: 7,
			Role: "coord", Peers: []string{"127.0.0.1:7001", "127.0.0.1:7002"}},
		{Type: MsgSnapshot, ID: 7, Seq: 3, Result: testResult()},
		{Type: MsgSnapshot, ID: 7, Seq: 4, Final: true, Result: testResult()},
		{Type: MsgError, ID: 9, Error: "engine: unknown table"},
	}
	for _, m := range msgs {
		data, err := encodeMsg(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := decodeServerMsg(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\n  sent %+v\n  got  %+v", m.Type, m, got)
		}
	}
}

// TestResultBinsSurviveWire spot-checks the snapshot payload: bin keys and
// values must come back exactly (the driver evaluates error metrics on
// them).
func TestResultBinsSurviveWire(t *testing.T) {
	in := testResult()
	data, err := encodeMsg(&ServerMsg{Type: MsgSnapshot, ID: 1, Seq: 1, Result: in})
	if err != nil {
		t.Fatal(err)
	}
	m, err := decodeServerMsg(data)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Result
	if out.RowsSeen != in.RowsSeen || out.TotalRows != in.TotalRows || out.Complete != in.Complete {
		t.Fatalf("progress metadata mismatch: %+v vs %+v", out, in)
	}
	if len(out.Bins) != len(in.Bins) {
		t.Fatalf("bin count %d, want %d", len(out.Bins), len(in.Bins))
	}
	for k, bv := range in.Bins {
		got, ok := out.Bins[k]
		if !ok {
			t.Fatalf("bin %v lost", k)
		}
		if !reflect.DeepEqual(bv, got) {
			t.Errorf("bin %v mismatch: %+v vs %+v", k, got, bv)
		}
	}
}

// TestClientMsgValidation covers the structural checks that protect the
// server's read loop.
func TestClientMsgValidation(t *testing.T) {
	bad := []*ClientMsg{
		{Type: "nope"},
		{Type: MsgQuery, ID: 1},              // no query
		{Type: MsgQuery, Query: testQuery()}, // no id
		{Type: MsgQuery, ID: -4, Query: testQuery()},
		{Type: MsgCancel},          // no id
		{Type: MsgLink, From: "a"}, // no to
		{Type: MsgDeleteViz},       // no name
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("message %+v validated unexpectedly", m)
		}
	}
	if _, err := decodeClientMsg([]byte(`{not json`)); err == nil {
		t.Error("malformed JSON decoded unexpectedly")
	}
	if _, err := decodeServerMsg([]byte(`{"type":"mystery"}`)); err == nil {
		t.Error("unknown server message type decoded unexpectedly")
	}
}
