package server

import (
	"testing"
	"time"

	"idebench/internal/ingest"
)

// TestIngestFrameBroadcast feeds a batch through one connection and asserts
// (a) the server applies it to the engine, (b) every live session — feeder
// and bystander alike — receives the watermark broadcast, and (c) a fresh
// query over the wire answers for the grown table with the new watermark.
func TestIngestFrameBroadcast(t *testing.T) {
	f := newFixture(t, Options{})
	f.srv.opts.Apply = ingest.NewApplier(f.db, f.eng).Apply

	feeder, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer feeder.Close()
	bystander, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	base := int64(f.db.Fact.NumRows())
	const added = 1200
	batch := ingest.FromTable(f.db.Fact, 0, added)
	if err := feeder.Ingest(batch); err != nil {
		t.Fatal(err)
	}

	want := base + added
	waitFor(t, 10*time.Second, "feeder watermark broadcast", func() bool {
		return feeder.Watermark() == want
	})
	waitFor(t, 10*time.Second, "bystander watermark broadcast", func() bool {
		return bystander.Watermark() == want
	})
	if feeder.Stats().Ingest.Load() == 0 || bystander.Stats().Ingest.Load() == 0 {
		t.Fatal("ingest frames not counted")
	}
	if got := f.eng.Watermark(); got != want {
		t.Fatalf("engine watermark %d, want %d", got, want)
	}

	// A fresh query over the wire must cover the grown table.
	q := firstQuery(t, f.flows[0])
	h, err := bystander.StartQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("query over grown table did not finish")
	}
	res := h.Snapshot()
	if res == nil {
		t.Fatal("no result")
	}
	if res.Watermark != want || res.TotalRows != want {
		t.Fatalf("result watermark/total = %d/%d, want %d", res.Watermark, res.TotalRows, want)
	}
}

// TestIngestRejectedWithoutApplier pins the error path: a server whose
// engine has no append capability answers ingest frames with an error frame
// and poisons the session like any other engine-side rejection.
func TestIngestRejectedWithoutApplier(t *testing.T) {
	f := newFixture(t, Options{}) // no Apply configured
	rem, err := NewRemote(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()
	if err := rem.Ingest(ingest.FromTable(f.db.Fact, 0, 10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "error frame", func() bool {
		return rem.Stats().Errors.Load() > 0
	})
	if rem.Watermark() != int64(f.db.Fact.NumRows()) {
		t.Fatal("watermark moved without an applier")
	}
	// The rejection must be surfaced, not swallowed: Err reports it and the
	// next Ingest refuses instead of pumping batches into a void.
	if rem.Err() == nil {
		t.Fatal("server rejection not surfaced via Err")
	}
	if err := rem.Ingest(ingest.FromTable(f.db.Fact, 0, 10)); err == nil {
		t.Fatal("Ingest after a server rejection should fail")
	}
}
