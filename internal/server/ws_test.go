package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer upgrades and echoes every message back until the peer closes.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := upgradeWS(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		for {
			msg, err := ws.ReadMessage()
			if err != nil {
				return
			}
			if err := ws.WriteMessage(msg); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http") + "/ws"
}

// TestWSEcho exercises the full handshake plus framing at every length
// class: 7-bit, 16-bit extended (>125) and 64-bit extended (>64KB) payloads,
// all masked client→server and unmasked server→client.
func TestWSEcho(t *testing.T) {
	srv := echoServer(t)
	c, err := dialWS(wsURL(srv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sizes := []int{0, 1, 125, 126, 4096, 65535, 65536, 200_000}
	for _, n := range sizes {
		msg := bytes.Repeat([]byte{0xA5}, n)
		if n > 0 {
			msg[0] = 'x' // not all-identical, so mask bugs can't cancel out
		}
		if err := c.WriteMessage(msg); err != nil {
			t.Fatalf("write %d bytes: %v", n, err)
		}
		got, err := c.ReadMessage()
		if err != nil {
			t.Fatalf("read %d bytes: %v", n, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("echo mismatch at %d bytes: got %d bytes back", n, len(got))
		}
	}
}

// TestWSPing asserts the read loop answers pings transparently while
// delivering data messages.
func TestWSPing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := upgradeWS(w, r)
		if err != nil {
			return
		}
		defer ws.Close()
		// Ping first; the client must answer with a pong carrying the same
		// payload before we hand it the data message.
		if err := ws.writeFrame(opPing, []byte("heartbeat")); err != nil {
			return
		}
		fin, opcode, payload, err := ws.readFrame()
		if err != nil || !fin || opcode != opPong || string(payload) != "heartbeat" {
			ws.WriteMessage([]byte("bad pong"))
			return
		}
		ws.WriteMessage([]byte("ok"))
	}))
	defer srv.Close()

	c, err := dialWS(wsURL(srv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := c.ReadMessage() // answers the ping, then returns "ok"
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ok" {
		t.Fatalf("got %q, want ok", got)
	}
}

// TestWSCloseHandshake asserts a peer close surfaces as ErrWSClosed and
// subsequent writes fail.
func TestWSCloseHandshake(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := upgradeWS(w, r)
		if err != nil {
			return
		}
		ws.Close()
	}))
	defer srv.Close()

	c, err := dialWS(wsURL(srv), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.ReadMessage(); !errors.Is(err, ErrWSClosed) {
		t.Fatalf("read after peer close: %v, want ErrWSClosed", err)
	}
	if err := c.WriteMessage([]byte("late")); !errors.Is(err, ErrWSClosed) {
		t.Fatalf("write after close: %v, want ErrWSClosed", err)
	}
}

// TestUpgradeRejectsPlainHTTP asserts a non-upgrade request gets an HTTP
// error, not a hijacked socket.
func TestUpgradeRejectsPlainHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := upgradeWS(w, r); err == nil {
			t.Error("plain GET upgraded unexpectedly")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusUpgradeRequired)
	}
}

// TestWSAcceptVector checks the handshake hash against the RFC 6455
// Sec. 1.3 worked example.
func TestWSAcceptVector(t *testing.T) {
	got := wsAccept("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("wsAccept = %q, want %q", got, want)
	}
}
