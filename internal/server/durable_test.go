package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDurable implements Durability for serving-layer tests.
type fakeDurable struct {
	status  DurableStatus
	flushes atomic.Int64
}

func (f *fakeDurable) DurableStatus() DurableStatus { return f.status }
func (f *fakeDurable) Flush() error                 { f.flushes.Add(1); return nil }

// TestHealthzDurableFields: with a durability backend wired in, /healthz
// reports the recovery state, and a drain flushes the log exactly once as
// its final step.
func TestHealthzDurableFields(t *testing.T) {
	fd := &fakeDurable{status: DurableStatus{
		Recovered:             true,
		CheckpointVersion:     40_000,
		ReplayedBatches:       3,
		ReplayedRows:          1_500,
		TruncatedTail:         true,
		RecoveredWatermark:    41_500,
		WALBytes:              12_345,
		Checkpoints:           2,
		LastCheckpointVersion: 40_000,
	}}
	f := newFixture(t, Options{Durable: fd})

	resp, err := http.Get(f.hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Durable            bool  `json:"durable"`
		Recovered          bool  `json:"recovered"`
		CheckpointVersion  int64 `json:"checkpoint_version"`
		RecoveredWatermark int64 `json:"recovered_watermark"`
		WALReplayedBatches int   `json:"wal_replayed_batches"`
		WALReplayedRows    int64 `json:"wal_replayed_rows"`
		WALTruncatedTail   bool  `json:"wal_truncated_tail"`
		WALBytes           int64 `json:"wal_bytes"`
		Checkpoints        int   `json:"checkpoints"`
		Watermark          int64 `json:"watermark"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.Durable || !h.Recovered {
		t.Fatalf("durable/recovered not reported: %+v", h)
	}
	if h.CheckpointVersion != 40_000 || h.RecoveredWatermark != 41_500 ||
		h.WALReplayedBatches != 3 || h.WALReplayedRows != 1_500 ||
		!h.WALTruncatedTail || h.WALBytes != 12_345 || h.Checkpoints != 2 {
		t.Fatalf("durable status not faithfully surfaced: %+v", h)
	}
	// The live watermark (the single liveWatermark() source) still reports
	// the engine's absorbed rows.
	if h.Watermark != int64(f.db.Fact.NumRows()) {
		t.Fatalf("watermark %d, want %d", h.Watermark, f.db.Fact.NumRows())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fd.flushes.Load(); got != 1 {
		t.Fatalf("drain flushed the durable log %d times, want 1", got)
	}
}

// TestHealthzNotDurable: without a backend the durability fields stay at
// their zero values and "durable" reads false.
func TestHealthzNotDurable(t *testing.T) {
	f := newFixture(t, Options{})
	resp, err := http.Get(f.hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Durable   bool `json:"durable"`
		Recovered bool `json:"recovered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Durable || h.Recovered {
		t.Fatalf("non-durable server claims durability: %+v", h)
	}
}
