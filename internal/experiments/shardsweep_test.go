package experiments

import (
	"io"
	"testing"
	"time"
)

// TestShardSweepCountsQuiesceBitwise runs a reduced shards-vs-single-node
// sweep and requires every point — baseline and coordinator alike — to pass
// the quiesce-bitwise gate with a sane measured shape.
func TestShardSweepCountsQuiesceBitwise(t *testing.T) {
	rows, err := ShardSweepCounts(Config{
		Rows: 4000, WorkflowsPerType: 1, Interactions: 6,
		TRs:  []time.Duration{40 * time.Millisecond},
		Seed: 1, Out: io.Discard,
	}, []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want single + shard2 + shard3", len(rows))
	}
	if rows[0].Topology != "single" || rows[1].Topology != "shard2" || rows[2].Topology != "shard3" {
		t.Fatalf("unexpected topologies: %+v", rows)
	}
	for _, r := range rows {
		if !r.BitwiseOK {
			t.Fatalf("%s: quiesce-bitwise gate failed: %+v", r.Topology, r)
		}
		if r.Queries == 0 || r.QueriesPerSec <= 0 {
			t.Fatalf("%s: no throughput measured: %+v", r.Topology, r)
		}
		if r.IngestedRows == 0 {
			t.Fatalf("%s: replay fed no ingest", r.Topology)
		}
	}
	if rows[1].Shards != 2 || rows[2].Shards != 3 {
		t.Fatalf("shard counts wrong: %+v", rows)
	}
}
