package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestUserSweepQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := UserSweepUsers(quickCfg(&buf), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// quickCfg names both engines explicitly, so the sweep honours the list.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 2 engines × 2 user counts", len(rows))
	}
	byKey := map[string]UserSweepRow{}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("%s users=%d executed no queries", r.Driver, r.Users)
		}
		if r.QueriesPerSec <= 0 {
			t.Errorf("%s users=%d has no throughput", r.Driver, r.Users)
		}
		if r.Users == 2 && r.SpeedupVs1 == 0 {
			t.Errorf("%s users=2 missing speedup vs the 1-user baseline", r.Driver)
		}
		if r.SequentialMS <= 0 || r.SpeedupVsSequential <= 0 {
			t.Errorf("%s users=%d missing sequential baseline: %+v", r.Driver, r.Users, r)
		}
		byKey[r.Driver+"/"+string(rune('0'+r.Users))] = r
	}
	// 2 concurrent users replay 2 workflows; each user handles one, so the
	// 2-user group must hold both workflows' queries.
	for _, eng := range []string{"exactdb", "progressive"} {
		one, two := byKey[eng+"/1"], byKey[eng+"/2"]
		if two.Queries <= one.Queries {
			t.Errorf("%s: 2-user run (%d queries) should replay more than the 1-user run (%d)",
				eng, two.Queries, one.Queries)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "User scalability") || !strings.Contains(out, "speedup_vs_sequential") {
		t.Errorf("sweep output missing sections:\n%s", out)
	}
}
