package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestIngestSweepQuick(t *testing.T) {
	var buf bytes.Buffer
	rows, err := IngestSweepUsers(quickCfg(&buf), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 2 engines × 2 user counts", len(rows))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("%s users=%d executed no queries", r.Driver, r.Users)
		}
		if r.IngestedRows == 0 {
			t.Errorf("%s users=%d applied no ingest batches", r.Driver, r.Users)
		}
		if r.IngestRowsPerSec <= 0 {
			t.Errorf("%s users=%d has no ingest throughput", r.Driver, r.Users)
		}
		if !r.BitwiseOK {
			t.Errorf("%s users=%d failed the quiesce bitwise gate", r.Driver, r.Users)
		}
		// More users replay more workflows, so more ingest events land.
		if r.Users == 2 && r.IngestedRows == 0 {
			t.Errorf("%s users=2 ingested nothing", r.Driver)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Live ingestion") || !strings.Contains(out, "quiesce_bitwise=true") {
		t.Errorf("sweep output missing sections:\n%s", out)
	}
	if strings.Contains(out, "quiesce_bitwise=false") {
		t.Errorf("sweep reported a failed quiesce gate:\n%s", out)
	}
}
