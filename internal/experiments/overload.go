package experiments

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"idebench/internal/core"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/loadgen"
	"idebench/internal/report"
	"idebench/internal/server"
)

// OverloadDeadline is the per-query interactivity deadline of the overload
// sweep — queries with no snapshot inside it count as violated, and the
// server sheds admitted queries still running past its late budget.
const OverloadDeadline = 12 * time.Millisecond

// DefaultOverloadRates is the offered-load ladder (arrivals/second). The
// upper rungs are far past what the tightened admission caps below admit, so
// the sweep always walks through the knee.
var DefaultOverloadRates = []float64{100, 250, 500, 1000, 2000, 4000}

// OverloadSweep measures open-loop overload survival — `idebench exp -name
// overload`, recorded as BENCH_6.json by benchrun. It serves a progressive
// engine on a real loopback listener with deliberately tight admission caps
// (the knee must appear inside the ladder, not at data-center scale), then
// walks DefaultOverloadRates with a Poisson open-loop generator. At every
// rate it reports the admitted-query latency tails (p50/p99/p99.9 of TTFS
// and time-to-final), the explicit-rejection and shedding counts, and the
// post-drain shared-scan consumer count, which must be zero: overload may
// cost rejections, never leaks or unbounded tails.
func OverloadSweep(cfg Config) ([]report.OverloadPoint, error) {
	return OverloadSweepRates(cfg, DefaultOverloadRates, 2*time.Second)
}

// OverloadSweepRates is OverloadSweep with an explicit rate ladder and
// per-point offered-load window.
func OverloadSweepRates(cfg Config, rates []float64, window time.Duration) ([]report.OverloadPoint, error) {
	cfg = cfg.withDefaults()
	if len(rates) == 0 {
		return nil, fmt.Errorf("experiments: empty overload rate ladder")
	}

	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := core.DefaultSettings()
	s.DataSize = cfg.Rows
	s.Seed = cfg.Seed
	p, err := core.Prepare("progressive", db, s)
	if err != nil {
		return nil, err
	}
	caps := engine.CapabilitiesOf(p.Engine)
	scanObs := caps.ScanObserver

	// Tight caps force the knee inside the ladder: a shallow admission queue
	// and a short late budget mean the upper rungs must be survived by
	// rejecting and shedding, not by buffering.
	opts := server.Options{
		Rows:               int64(db.Fact.NumRows()),
		Seed:               cfg.Seed,
		MaxConns:           64,
		MaxInflight:        16,
		MaxInflightPerConn: 8,
		PollInterval:       time.Millisecond,
	}
	if app := caps.Appender; app != nil {
		opts.Apply = ingest.NewApplier(db, app).Apply
	}
	srv := server.New(p.Engine, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv}
	serveDone := make(chan struct{})
	go func() { hsrv.Serve(l); close(serveDone) }()
	defer func() { hsrv.Close(); <-serveDone }()
	addr := l.Addr().String()

	var points []report.OverloadPoint
	for i, rate := range rates {
		// Fresh client per point: session state, handle maps, and frame
		// stats start clean at every rung.
		rem, err := server.NewRemote(addr)
		if err != nil {
			return nil, fmt.Errorf("experiments: overload dial at %.0f/s: %w", rate, err)
		}
		wl, err := loadgen.New("uniform", db, cfg.Seed+int64(i))
		if err != nil {
			rem.Close()
			return nil, err
		}
		st, err := loadgen.Run(rem, wl, loadgen.Poisson{Rate: rate}, loadgen.Config{
			Sessions: 8,
			Duration: window,
			Deadline: OverloadDeadline,
			Seed:     cfg.Seed + int64(100+i),
		})
		rem.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: overload at %.0f/s: %w", rate, err)
		}

		// The leak gate: after the point's clients are gone, the shared scan
		// must drain to zero consumers before the next rung starts.
		leaked := 0
		if scanObs != nil {
			deadline := time.Now().Add(10 * time.Second)
			for scanObs.ActiveScanConsumers() > 0 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			leaked = scanObs.ActiveScanConsumers()
		}

		points = append(points, report.OverloadPoint{
			Rate:            rate,
			OfferedRate:     st.OfferedRate,
			Offered:         st.Offered,
			Started:         st.Started,
			Completed:       st.Completed,
			Rejected:        st.Rejected,
			Dropped:         st.Dropped,
			Errors:          st.Errors,
			Shed:            st.Shed,
			Violations:      st.Violations,
			RejectedPct:     st.RejectedPct(),
			ViolationPct:    st.ViolationPct(),
			TTFSP50:         st.TTFS.P50,
			TTFSP99:         st.TTFS.P99,
			TTFSP999:        st.TTFS.P999,
			DoneP50:         st.Done.P50,
			DoneP99:         st.Done.P99,
			DoneP999:        st.Done.P999,
			LeakedConsumers: leaked,
		})
	}

	fmt.Fprintln(cfg.Out, "=== Overload survival: open-loop Poisson arrivals vs tightened admission caps ===")
	if err := report.RenderOverloadSweep(cfg.Out, points); err != nil {
		return nil, err
	}
	return points, nil
}
