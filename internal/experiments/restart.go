package experiments

import (
	"fmt"
	"os"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/durable"
	"idebench/internal/engine"
	"idebench/internal/ingest"
)

// RestartResult is the warm-restart benchmark artifact: how long a durable
// server takes to come back (checkpoint load + reordered prepare + WAL
// replay) against the cold path it replaces (datagen + full prepare with
// the sampling reorder), plus the correctness gate that the recovered state
// answers bitwise-identically to the cold build of the same data version.
type RestartResult struct {
	Rows         int   `json:"rows"`
	IngestedRows int64 `json:"ingested_rows"`
	Batches      int   `json:"batches"`
	// ColdPrepareMS is datagen + Prepare from nothing (what every boot costs
	// without -data-dir).
	ColdPrepareMS float64 `json:"cold_prepare_ms"`
	// CheckpointMS/CheckpointBytes price the durability write side.
	CheckpointMS    float64 `json:"checkpoint_ms"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
	// WarmLoadMS is checkpoint load + verification + PrepareReordered;
	// WALReplayMS is redoing the logged tail through the ingest path;
	// WarmTotalMS is their sum — the durable boot's time-to-serving.
	WarmLoadMS  float64 `json:"warm_load_ms"`
	WALReplayMS float64 `json:"wal_replay_ms"`
	WarmTotalMS float64 `json:"warm_total_ms"`
	// Bitwise records that a count over the warm-recovered engine matched
	// the ground truth of the recovered watermark exactly.
	Bitwise bool `json:"bitwise"`
	// WarmBeatsCold is the acceptance gate: the warm boot (including replay)
	// must be faster than the cold prepare it skips.
	WarmBeatsCold bool `json:"warm_beats_cold"`
}

// walSink adapts the WAL-logging Applier into an ingest.Sink, so a harness
// drives the same validate→log→apply path the live server uses.
type walSink struct{ ap *ingest.Applier }

func (s walSink) ApplyBatch(b *ingest.Batch, _ *dataset.Table) error {
	_, err := s.ap.Apply(b)
	return err
}

// RestartBench measures one durable serve/crash/warm-boot cycle in-process
// on the progressive engine: bootstrap a data directory, ingest `batches`
// batches of `batchRows` rows (checkpointing halfway, so recovery exercises
// both the checkpoint and a live WAL tail), then time a recovery against a
// from-scratch cold prepare of the same base.
func RestartBench(cfg Config, batches, batchRows int) (*RestartResult, error) {
	cfg = cfg.withDefaults()
	dir, err := os.MkdirTemp("", "idebench-restart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &RestartResult{Rows: cfg.Rows, Batches: batches}

	// Serve side: cold-build the base, bootstrap the durable directory, and
	// ingest through the WAL exactly like `serve -data-dir`.
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := core.DefaultSettings()
	s.DataSize = cfg.Rows
	s.Seed = cfg.Seed
	p, err := core.Prepare("progressive", db, s)
	if err != nil {
		return nil, err
	}
	caps := engine.CapabilitiesOf(p.Engine)
	vs := caps.ViewSnapshotter
	if vs == nil {
		return nil, fmt.Errorf("experiments: progressive lost the ViewSnapshotter capability")
	}
	meta := durable.Meta{Engine: "progressive", Seed: cfg.Seed, BaseRows: int64(cfg.Rows)}
	st, err := durable.Open(dir, durable.Options{Meta: meta})
	if err != nil {
		return nil, err
	}
	ckStart := time.Now()
	vdb, perm := vs.SnapshotView()
	if err := st.Bootstrap(vdb, perm); err != nil {
		return nil, err
	}
	res.CheckpointMS = msSince(ckStart)
	res.CheckpointBytes = st.Status().LastCheckpointBytes

	app := caps.Appender
	if app == nil {
		return nil, fmt.Errorf("experiments: progressive lost the Appender capability")
	}
	ap := ingest.NewApplier(db, app)
	ap.SetLog(st.LogBatch)
	src, err := ingest.NewSource(cfg.Rows, cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	h := ingest.NewHarness(db, src, walSink{ap})
	for i := 0; i < batches; i++ {
		if _, err := h.Ingest(batchRows); err != nil {
			return nil, err
		}
		if i == batches/2 {
			// Mid-run checkpoint: recovery below must stitch checkpoint +
			// WAL tail, not just one or the other.
			cdb, cperm := vs.SnapshotView()
			if err := st.Checkpoint(cdb, cperm); err != nil {
				return nil, err
			}
		}
	}
	res.IngestedRows = h.IngestedRows()
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Cold side: what a boot without durable state costs to merely reach the
	// base version (the warm path additionally reaches base+ingested).
	coldStart := time.Now()
	coldDB, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := core.Prepare("progressive", coldDB, s); err != nil {
		return nil, err
	}
	res.ColdPrepareMS = msSince(coldStart)

	// Warm side: recover the directory, adopt the checkpoint's own order,
	// redo the WAL tail.
	warmStart := time.Now()
	st2, err := durable.Open(dir, durable.Options{Meta: meta})
	if err != nil {
		return nil, err
	}
	rec, err := st2.Recover()
	if err != nil {
		return nil, err
	}
	if rec.Checkpoint == nil {
		return nil, fmt.Errorf("experiments: restart: no checkpoint recovered")
	}
	eng2, err := core.NewEngine("progressive")
	if err != nil {
		return nil, err
	}
	caps2 := engine.CapabilitiesOf(eng2)
	rp := caps2.ReorderedPreparer
	if rp == nil {
		return nil, fmt.Errorf("experiments: progressive lost the ReorderedPreparer capability")
	}
	eopts := engine.Options{Confidence: s.Confidence, Seed: s.Seed}
	if err := rp.PrepareReordered(rec.Checkpoint.DB, rec.Checkpoint.Perm, eopts); err != nil {
		return nil, err
	}
	res.WarmLoadMS = msSince(warmStart)

	replayStart := time.Now()
	app2 := caps2.Appender
	if app2 == nil {
		return nil, fmt.Errorf("experiments: progressive lost the Appender capability")
	}
	ap2 := ingest.NewApplier(rec.Checkpoint.DB, app2)
	for _, b := range rec.Batches {
		if _, err := ap2.Apply(b); err != nil {
			return nil, fmt.Errorf("experiments: wal replay: %w", err)
		}
	}
	res.WALReplayMS = msSince(replayStart)
	res.WarmTotalMS = res.WarmLoadMS + res.WALReplayMS
	if err := st2.Close(); err != nil {
		return nil, err
	}
	if got, want := app2.Watermark(), h.Watermark(); got != want {
		return nil, fmt.Errorf("experiments: restart: replayed watermark %d, want %d", got, want)
	}

	// Correctness gate: the warm-recovered engine answers like a cold exact
	// scan of the same data version.
	bitwise, err := quiesceBitwise(eng2, app2, h)
	if err != nil {
		return nil, fmt.Errorf("experiments: restart bitwise check: %w", err)
	}
	res.Bitwise = bitwise
	res.WarmBeatsCold = res.WarmTotalMS < res.ColdPrepareMS
	return res, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
