// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 5) on the scaled-down substrate: Fig. 5 (summary
// report), Fig. 6a–f, the Exp.-4 factor analysis, the Exp.-5 System-Y
// comparison, the data preparation times and the Table-1 detailed report.
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package experiments

import (
	"fmt"
	"io"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/report"
	"idebench/internal/workflow"
)

// Config parameterizes an experiment run. The zero value is completed by
// withDefaults to the paper's (scaled) default configuration.
type Config struct {
	// Rows is the fact-table size (default core.SizeM).
	Rows int
	// WorkflowsPerType is the number of workflows per workflow type
	// (default 10, the paper's default configuration).
	WorkflowsPerType int
	// Interactions per workflow (default 18).
	Interactions int
	// TRs is the time-requirement sweep (default core.DefaultTimeRequirements).
	TRs []time.Duration
	// ThinkTime between interactions (default core.DefaultThinkTime; the
	// paper stress-tests with its smallest think time).
	ThinkTime time.Duration
	// Engines to benchmark (default core.EngineNames).
	Engines []string
	// Seed drives data and workload generation.
	Seed int64
	// Out receives the printed report (default: required, callers pass
	// os.Stdout or a buffer).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = core.SizeM
	}
	if c.WorkflowsPerType <= 0 {
		c.WorkflowsPerType = 10
	}
	if c.Interactions <= 0 {
		c.Interactions = 18
	}
	if len(c.TRs) == 0 {
		c.TRs = core.DefaultTimeRequirements()
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = core.DefaultThinkTime
	}
	if len(c.Engines) == 0 {
		c.Engines = append([]string(nil), core.EngineNames...)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// OverallResult carries the raw records of the main experiment, from which
// Fig. 5 and Fig. 6a–c are different views.
type OverallResult struct {
	Records  []driver.Record
	PrepTime map[string]time.Duration
}

// RunOverall executes the paper's main experiment (Sec. 5.2): the mixed
// workload on every engine across the TR sweep, fixed data size,
// de-normalized schema.
func RunOverall(cfg Config) (*OverallResult, error) {
	cfg = cfg.withDefaults()
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	flows, err := core.GenerateWorkflows(db, cfg.WorkflowsPerType, cfg.Interactions, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	mixed := core.MixedOnly(flows)

	res := &OverallResult{PrepTime: map[string]time.Duration{}}
	for _, name := range cfg.Engines {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.ThinkTime = cfg.ThinkTime
		p, err := core.Prepare(name, db, s)
		if err != nil {
			return nil, err
		}
		res.PrepTime[name] = p.PrepTime
		for _, tr := range cfg.TRs {
			s.TimeRequirement = tr
			recs, err := p.Run(mixed, s)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s tr=%v: %w", name, tr, err)
			}
			res.Records = append(res.Records, recs...)
		}
	}
	return res, nil
}

// Fig5 prints the summary report: per engine and TR, the TR-violation and
// missing-bins percentages plus the MRE CDF with its area above the curve.
func Fig5(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	res, err := RunOverall(cfg)
	if err != nil {
		return nil, err
	}
	rows := report.Summarize(res.Records, report.GroupBy{Driver: true, TimeReq: true})
	fmt.Fprintln(cfg.Out, "=== Figure 5: summary report (mixed workload) ===")
	if err := report.RenderSummaries(cfg.Out, rows); err != nil {
		return nil, err
	}
	fmt.Fprintln(cfg.Out)
	for _, s := range rows {
		if err := report.RenderCDF(cfg.Out, s, 50, 8); err != nil {
			return nil, err
		}
		fmt.Fprintln(cfg.Out)
	}
	return rows, nil
}

// seriesView prints one metric column per engine across TRs — the shape of
// the line charts in Fig. 6a–c.
func seriesView(out io.Writer, title, metric string, rows []report.Summary,
	pick func(report.Summary) float64) {
	fmt.Fprintf(out, "=== %s ===\n", title)
	byDriver := map[string][]report.Summary{}
	var order []string
	for _, s := range rows {
		if _, ok := byDriver[s.Key.Driver]; !ok {
			order = append(order, s.Key.Driver)
		}
		byDriver[s.Key.Driver] = append(byDriver[s.Key.Driver], s)
	}
	for _, d := range order {
		fmt.Fprintf(out, "%-12s", d)
		for _, s := range byDriver[d] {
			fmt.Fprintf(out, "  tr=%gms:%8.3f", s.Key.TimeReqMS, pick(s))
		}
		fmt.Fprintf(out, "   (%s)\n", metric)
	}
}

// Fig6a prints the ratio of TR violations across time requirements.
func Fig6a(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	res, err := RunOverall(cfg)
	if err != nil {
		return nil, err
	}
	rows := report.Summarize(res.Records, report.GroupBy{Driver: true, TimeReq: true})
	seriesView(cfg.Out, "Figure 6a: TR violations vs time requirement", "tr_violated%",
		rows, func(s report.Summary) float64 { return s.TRViolatedPct })
	return rows, nil
}

// Fig6b prints the median of the mean relative margins across TRs.
func Fig6b(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	res, err := RunOverall(cfg)
	if err != nil {
		return nil, err
	}
	rows := report.Summarize(res.Records, report.GroupBy{Driver: true, TimeReq: true})
	seriesView(cfg.Out, "Figure 6b: median relative margin vs time requirement", "median_margin",
		rows, func(s report.Summary) float64 { return s.MedianMargin })
	return rows, nil
}

// Fig6c prints the cosine distance across TRs.
func Fig6c(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	res, err := RunOverall(cfg)
	if err != nil {
		return nil, err
	}
	rows := report.Summarize(res.Records, report.GroupBy{Driver: true, TimeReq: true})
	seriesView(cfg.Out, "Figure 6c: cosine distance vs time requirement", "mean_cosine",
		rows, func(s report.Summary) float64 { return s.MeanCosine })
	return rows, nil
}

// Fig6d runs all workflow types at one fixed TR and prints the proportion
// of missing bins per engine and workflow type.
func Fig6d(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	flows, err := core.GenerateWorkflows(db, cfg.WorkflowsPerType, cfg.Interactions, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	tr := cfg.TRs[len(cfg.TRs)/2]

	var records []driver.Record
	for _, name := range cfg.Engines {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.ThinkTime = cfg.ThinkTime
		s.TimeRequirement = tr
		p, err := core.Prepare(name, db, s)
		if err != nil {
			return nil, err
		}
		recs, err := p.Run(flows, s)
		if err != nil {
			return nil, err
		}
		records = append(records, recs...)
	}
	rows := report.Summarize(records, report.GroupBy{Driver: true, WorkflowType: true})
	fmt.Fprintf(cfg.Out, "=== Figure 6d: missing bins by workflow type (tr=%v) ===\n", tr)
	if err := report.RenderSummaries(cfg.Out, rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Fig6e compares normalized vs de-normalized schemas for the join-capable
// engines at two data sizes (Exp. 2).
func Fig6e(cfg Config) ([]report.Summary, error) {
	cfg = cfg.withDefaults()
	engines := make([]string, 0, 2)
	for _, e := range cfg.Engines {
		if core.SupportsJoins(e) {
			engines = append(engines, e)
		}
	}
	if len(engines) == 0 {
		engines = []string{"exactdb", "onlinedb"}
	}
	// Paper: 100M and 500M. At our scale the smaller size must still keep
	// the online engine's blocking fallback above the TR sweep (otherwise
	// the paper's "XDB stays flat, MonetDB grows" contrast disappears), so
	// sweep {1×, 2×} of the configured size.
	sizes := []int{cfg.Rows, 2 * cfg.Rows}

	var records []driver.Record
	for _, rows := range sizes {
		for _, useJoins := range []bool{false, true} {
			db, err := core.BuildData(rows, useJoins, cfg.Seed)
			if err != nil {
				return nil, err
			}
			// Generate workloads against the flat schema so both variants
			// run identical queries (attributes resolve through dimensions
			// on the normalized variant).
			flatDB, err := core.BuildData(rows, false, cfg.Seed)
			if err != nil {
				return nil, err
			}
			flows, err := core.GenerateWorkflows(flatDB, cfg.WorkflowsPerType, cfg.Interactions, cfg.Seed+100)
			if err != nil {
				return nil, err
			}
			mixed := core.MixedOnly(flows)
			for _, name := range engines {
				s := core.DefaultSettings()
				s.DataSize = rows
				s.Seed = cfg.Seed
				s.ThinkTime = cfg.ThinkTime
				s.UseJoins = useJoins
				p, err := core.Prepare(name, db, s)
				if err != nil {
					return nil, err
				}
				for _, tr := range cfg.TRs {
					s.TimeRequirement = tr
					recs, err := p.Run(mixed, s)
					if err != nil {
						return nil, err
					}
					// Annotate schema variant through the driver name.
					for i := range recs {
						if useJoins {
							recs[i].Driver += "+join"
						}
					}
					records = append(records, recs...)
				}
			}
		}
	}
	rows := report.Summarize(records, report.GroupBy{Driver: true, DataSize: true})
	fmt.Fprintln(cfg.Out, "=== Figure 6e: normalized vs de-normalized TR violations (Exp. 2) ===")
	if err := report.RenderSummaries(cfg.Out, rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// Exp4 runs the main experiment and prints the "other effects" factor
// analysis (Sec. 5.5).
func Exp4(cfg Config) ([]report.EffectRow, error) {
	cfg = cfg.withDefaults()
	res, err := RunOverall(cfg)
	if err != nil {
		return nil, err
	}
	rows := report.Analyze(res.Records)
	fmt.Fprintln(cfg.Out, "=== Exp. 4: other effects (bin dims / binning type / agg type / concurrency / specificity) ===")
	if err := report.RenderEffects(cfg.Out, rows); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrepRow reports one engine's data preparation time (Sec. 5.2).
type PrepRow struct {
	Engine   string
	Rows     int
	Bytes    int64
	PrepTime time.Duration
}

// Prep measures the data preparation time of every engine on the default
// dataset.
func Prep(cfg Config) ([]PrepRow, error) {
	cfg = cfg.withDefaults()
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []PrepRow
	for _, name := range cfg.Engines {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		p, err := core.Prepare(name, db, s)
		if err != nil {
			return nil, err
		}
		out = append(out, PrepRow{Engine: name, Rows: cfg.Rows, Bytes: db.TotalBytes(), PrepTime: p.PrepTime})
	}
	fmt.Fprintln(cfg.Out, "=== Data preparation time (Sec. 5.2) ===")
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-14s rows=%-9d bytes=%-11d prep=%v\n", r.Engine, r.Rows, r.Bytes, r.PrepTime)
	}
	return out, nil
}

// Table1 runs one mixed workflow on the progressive engine and prints the
// detailed per-query report (paper Table 1, appendix).
func Table1(cfg Config) ([]driver.Record, error) {
	cfg = cfg.withDefaults()
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	flows, err := core.GenerateWorkflows(db, 1, cfg.Interactions, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	mixed := core.MixedOnly(flows)
	s := core.DefaultSettings()
	s.DataSize = cfg.Rows
	s.Seed = cfg.Seed
	s.ThinkTime = cfg.ThinkTime
	s.TimeRequirement = cfg.TRs[0]
	p, err := core.Prepare("progressive", db, s)
	if err != nil {
		return nil, err
	}
	recs, err := p.Run(mixed, s)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(cfg.Out, "=== Table 1: detailed report (one mixed workflow, progressive engine) ===")
	if err := report.WriteDetailedCSV(cfg.Out, recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// flatDBForWorkloads is a seam for tests.
var _ = dataset.Kind(0)

// ThinkTimeResult is one point of Fig. 6f.
type ThinkTimeResult struct {
	ThinkTime   time.Duration
	MissingBins float64
	Speculative bool
}

// Exp5Result compares System Y (idelayer over exactdb) with its backend.
type Exp5Result struct {
	Engine        string
	MeanLatencyMS float64
	TRViolatedPct float64
	Queries       int
}

// Exp5 replicates Sec. 5.6: three 1:N workflows on exactdb directly and on
// the System-Y layer above it; the layer adds a constant per-query delay.
func Exp5(cfg Config) ([]Exp5Result, error) {
	cfg = cfg.withDefaults()
	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workflowGenerator(db)
	if err != nil {
		return nil, err
	}
	var flows []*workflow.Workflow
	for i := 0; i < 3; i++ {
		w, err := gen.Generate(workflow.GenConfig{
			Type: workflow.OneToNLinking, Interactions: cfg.Interactions,
			Seed: cfg.Seed + int64(500+i), Name: fmt.Sprintf("1n-variant-%d", i),
		})
		if err != nil {
			return nil, err
		}
		flows = append(flows, w)
	}

	var out []Exp5Result
	// Generous TR so System Y's render delay shows up as latency, not as
	// violations (the paper measured latency by watching the UI update).
	tr := 10 * cfg.TRs[len(cfg.TRs)-1]
	for _, name := range []string{"exactdb", "systemy"} {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.ThinkTime = cfg.ThinkTime
		s.TimeRequirement = tr
		p, err := core.Prepare(name, db, s)
		if err != nil {
			return nil, err
		}
		recs, err := p.Run(flows, s)
		if err != nil {
			return nil, err
		}
		var latSum float64
		var violated int
		for _, r := range recs {
			latSum += r.LatencyMS()
			if r.Metrics.TRViolated {
				violated++
			}
		}
		out = append(out, Exp5Result{
			Engine:        name,
			MeanLatencyMS: latSum / float64(len(recs)),
			TRViolatedPct: 100 * float64(violated) / float64(len(recs)),
			Queries:       len(recs),
		})
	}
	fmt.Fprintln(cfg.Out, "=== Exp. 5: System Y (IDE layer) vs direct backend ===")
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-10s queries=%-4d mean_latency=%.2fms tr_violated=%.1f%%\n",
			r.Engine, r.Queries, r.MeanLatencyMS, r.TRViolatedPct)
	}
	return out, nil
}

func workflowGenerator(db *dataset.Database) (*workflow.Generator, error) {
	return workflow.NewGenerator(db.Fact)
}
