package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"idebench/internal/workflow"
)

// quickCfg is a minimal configuration that exercises every code path while
// keeping the full test suite fast.
func quickCfg(out *bytes.Buffer) Config {
	return Config{
		Rows:             30_000,
		WorkflowsPerType: 1,
		Interactions:     6,
		TRs:              []time.Duration{2 * time.Millisecond, 20 * time.Millisecond},
		ThinkTime:        time.Millisecond,
		Engines:          []string{"exactdb", "progressive"},
		Seed:             3,
		Out:              out,
	}
}

func TestRunOverall(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunOverall(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no records")
	}
	if len(res.PrepTime) != 2 {
		t.Errorf("prep times = %d, want 2", len(res.PrepTime))
	}
	drivers := map[string]bool{}
	trs := map[float64]bool{}
	for _, r := range res.Records {
		drivers[r.Driver] = true
		trs[r.TimeReqMS] = true
	}
	if len(drivers) != 2 || len(trs) != 2 {
		t.Errorf("drivers=%v trs=%v", drivers, trs)
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig5(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 engines × 2 TRs
		t.Errorf("summary rows = %d, want 4", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "MRE CDF", "tr_violated%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q", want)
		}
	}
}

func TestFig6Series(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	if _, err := Fig6a(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6a") {
		t.Error("fig6a header missing")
	}
	buf.Reset()
	if _, err := Fig6b(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "median_margin") {
		t.Error("fig6b metric missing")
	}
	buf.Reset()
	if _, err := Fig6c(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cosine") {
		t.Error("fig6c metric missing")
	}
}

func TestFig6d(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig6d(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// 2 engines × 5 workflow types.
	if len(rows) != 10 {
		t.Errorf("rows = %d, want 10", len(rows))
	}
	types := map[workflow.Type]bool{}
	for _, r := range rows {
		types[r.Key.WorkflowType] = true
	}
	if len(types) != 5 {
		t.Errorf("workflow types = %d, want 5", len(types))
	}
}

func TestFig6e(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Engines = []string{"exactdb"}
	rows, err := Fig6e(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 engine × 2 schema variants × 2 sizes.
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	joined := 0
	for _, r := range rows {
		if strings.HasSuffix(r.Key.Driver, "+join") {
			joined++
		}
	}
	if joined != 2 {
		t.Errorf("normalized rows = %d, want 2", joined)
	}
}

func TestFig6f(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	results, err := Fig6f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 think times × 2 modes.
	if len(results) != 20 {
		t.Fatalf("results = %d, want 20", len(results))
	}
	spec, base := 0, 0
	for _, r := range results {
		if r.MissingBins < 0 || r.MissingBins > 1 {
			t.Errorf("missing bins out of range: %v", r.MissingBins)
		}
		if r.Speculative {
			spec++
		} else {
			base++
		}
	}
	if spec != 10 || base != 10 {
		t.Errorf("spec=%d base=%d", spec, base)
	}
	if !strings.Contains(buf.String(), "Figure 6f") {
		t.Error("fig6f header missing")
	}
}

func TestExp4(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Exp4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no effect rows")
	}
	if !strings.Contains(buf.String(), "bin_dims") {
		t.Error("exp4 output missing factors")
	}
}

func TestExp5(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	results, err := Exp5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	var direct, layered Exp5Result
	for _, r := range results {
		if r.Engine == "exactdb" {
			direct = r
		} else {
			layered = r
		}
	}
	// The IDE layer must add latency on top of the backend.
	if layered.MeanLatencyMS <= direct.MeanLatencyMS {
		t.Errorf("System Y latency %.2fms should exceed backend %.2fms",
			layered.MeanLatencyMS, direct.MeanLatencyMS)
	}
}

func TestPrep(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Engines = []string{"exactdb", "progressive", "sampledb", "onlinedb"}
	rows, err := Prep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	times := map[string]time.Duration{}
	for _, r := range rows {
		if r.PrepTime <= 0 {
			t.Errorf("%s: prep time not measured", r.Engine)
		}
		times[r.Engine] = r.PrepTime
	}
	// Paper ordering: XDB ≫ System X > MonetDB ≫ IDEA.
	if times["onlinedb"] <= times["progressive"] {
		t.Errorf("onlinedb prep (%v) should exceed progressive prep (%v)",
			times["onlinedb"], times["progressive"])
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	recs, err := Table1(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	out := buf.String()
	if !strings.Contains(out, "id,interaction,viz_name") {
		t.Error("table1 CSV header missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Rows <= 0 || c.WorkflowsPerType != 10 || c.Interactions != 18 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.TRs) != 5 || len(c.Engines) != 4 {
		t.Errorf("sweep defaults wrong: %+v", c)
	}
}

func TestTrOfHelper(t *testing.T) {
	if trOf(12*time.Millisecond) != 12 {
		t.Error("trOf wrong")
	}
}
