package experiments

import (
	"io"
	"testing"
	"time"
)

// TestElasticSweepLadder runs a reduced availability ladder over a 2x2
// replicated tier and checks the scenario-by-scenario contract: fully
// covered points pass the quiesce-bitwise gate, the dead-partition point
// degrades by exactly one partition with a sane population fraction, and
// every scenario answers queries.
func TestElasticSweepLadder(t *testing.T) {
	rows, err := ElasticSweepSpec(Config{
		Rows: 4000, WorkflowsPerType: 1, Interactions: 6,
		TRs:  []time.Duration{40 * time.Millisecond},
		Seed: 1, Out: io.Discard,
	}, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want all_up + replica_dead + partition_dead", len(rows))
	}
	byName := map[string]ElasticRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.Queries == 0 {
			t.Fatalf("%s: replay answered no queries: %+v", r.Scenario, r)
		}
	}
	for _, name := range []string{"all_up", "replica_dead"} {
		r := byName[name]
		if r.Degraded || r.PartitionsAnswered != 2 || r.PopulationFraction != 1 {
			t.Fatalf("%s: expected full coverage, got %+v", name, r)
		}
		if !r.BitwiseOK {
			t.Fatalf("%s: quiesce-bitwise gate failed: %+v", name, r)
		}
		if r.IngestedRows == 0 {
			t.Fatalf("%s: replay fed no ingest", name)
		}
	}
	pd := byName["partition_dead"]
	if !pd.Degraded || pd.PartitionsAnswered != 1 || pd.PartitionsTotal != 2 {
		t.Fatalf("partition_dead: expected 1/2 degraded coverage, got %+v", pd)
	}
	if pd.PopulationFraction <= 0 || pd.PopulationFraction >= 1 {
		t.Fatalf("partition_dead: population fraction %v outside (0,1)", pd.PopulationFraction)
	}
	if pd.DeadReplicas != 2 {
		t.Fatalf("partition_dead: dead replicas = %d, want 2", pd.DeadReplicas)
	}
}
