package experiments

import (
	"fmt"
	"time"

	"idebench/internal/core"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/groundtruth"
	"idebench/internal/report"
	"idebench/internal/workflow"
)

// DefaultUserCounts is the user-scalability sweep: how many concurrent
// simulated analysts share one prepared engine.
var DefaultUserCounts = []int{1, 2, 4, 8}

// UserSweepRow is one measured point of the user sweep: the concurrent
// replay of U workflows by U users, plus the sequential single-session
// replay of the same U workflows as the baseline the speedup is against.
type UserSweepRow struct {
	report.UserScaling
	// SequentialMS is the wall-clock of replaying the same workflows
	// one-by-one on a single session; SpeedupVsSequential is that over the
	// concurrent wall-clock. On a shared-scan engine concurrent users
	// overlap both their think times and their memory sweeps, so the ratio
	// should exceed 1 well before perfect scaling.
	SequentialMS        float64
	SpeedupVsSequential float64
}

// UserSweep measures multi-user scaling (the ROADMAP's "serve many users"
// axis): for each engine and each user count U it replays U mixed workflows
// as U concurrent simulated users over one prepared engine, and the same U
// workflows sequentially on one session as the baseline. Engines default to
// progressive (shared scans: users amortize memory sweeps) vs exactdb
// (independent parallel scans: users compete), the contrast the shared-scan
// scheduler was built for.
func UserSweep(cfg Config) ([]UserSweepRow, error) {
	return UserSweepUsers(cfg, DefaultUserCounts)
}

// UserSweepUsers is UserSweep with an explicit user-count axis.
func UserSweepUsers(cfg Config, userCounts []int) ([]UserSweepRow, error) {
	// Capture whether the caller named engines before withDefaults fills
	// the standard four: with no explicit list, the sweep contrasts the
	// shared-scan engine with the independent-scan one instead of running
	// all of them.
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = []string{"progressive", "exactdb"}
	}
	cfg = cfg.withDefaults()
	maxUsers := 0
	for _, u := range userCounts {
		if u > maxUsers {
			maxUsers = u
		}
	}
	if maxUsers == 0 {
		return nil, fmt.Errorf("experiments: empty user-count sweep")
	}

	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workflowGenerator(db)
	if err != nil {
		return nil, err
	}
	// One mixed workflow per user, distinct seeds: each simulated analyst
	// explores differently, like the paper's per-workflow variation.
	flows := make([]*workflow.Workflow, maxUsers)
	for i := range flows {
		w, err := gen.Generate(workflow.GenConfig{
			Type: workflow.Mixed, Interactions: cfg.Interactions,
			Seed: cfg.Seed + int64(9000+i), Name: fmt.Sprintf("mixed-u%02d", i),
		})
		if err != nil {
			return nil, err
		}
		flows[i] = w
	}

	tr := cfg.TRs[len(cfg.TRs)/2]
	var allRecords []driver.Record
	type pointKey struct {
		driver string
		users  int
	}
	// Keyed by Engine.Name() — the label records carry and SummarizeUsers
	// groups by — not the registry name used to construct the engine
	// (progressive-spec reports as "progressive", systemy as
	// "idelayer(exactdb)").
	seqMS := map[pointKey]float64{}
	seenDriver := map[string]string{} // Engine.Name() -> registry name
	for _, name := range engines {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.ThinkTime = cfg.ThinkTime
		s.TimeRequirement = tr
		p, err := core.Prepare(name, db, s)
		if err != nil {
			return nil, err
		}
		drv := p.Engine.Name()
		if prev, ok := seenDriver[drv]; ok {
			return nil, fmt.Errorf("experiments: engines %q and %q both report driver name %q; "+
				"their records would merge into one group — sweep them separately", prev, name, drv)
		}
		seenDriver[drv] = name
		for _, users := range userCounts {
			recs, seq, err := runUserPoint(p.Engine, p.GT, s, flows[:users], users)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s users=%d: %w", name, users, err)
			}
			allRecords = append(allRecords, recs...)
			seqMS[pointKey{drv, users}] = seq
		}
	}
	// One aggregation over every point's records: SummarizeUsers groups by
	// (driver, users) and derives SpeedupVs1 against each driver's 1-user
	// baseline, so the sweep reuses the report's rules instead of
	// duplicating them. The sequential baseline ratios against the same
	// wall-clock the row reports, keeping the artifact self-consistent.
	var out []UserSweepRow
	for _, scal := range report.SummarizeUsers(allRecords) {
		row := UserSweepRow{UserScaling: scal, SequentialMS: seqMS[pointKey{scal.Driver, scal.Users}]}
		if row.WallClockMS > 0 {
			row.SpeedupVsSequential = row.SequentialMS / row.WallClockMS
		}
		out = append(out, row)
	}

	fmt.Fprintln(cfg.Out, "=== User scalability: concurrent analysts per engine (mixed workload) ===")
	scal := make([]report.UserScaling, len(out))
	for i, r := range out {
		scal[i] = r.UserScaling
	}
	if err := report.RenderUserSweep(cfg.Out, scal); err != nil {
		return nil, err
	}
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-12s users=%d concurrent=%.1fms sequential=%.1fms speedup_vs_sequential=%.2fx\n",
			r.Driver, r.Users, r.WallClockMS, r.SequentialMS, r.SpeedupVsSequential)
	}
	return out, nil
}

// runUserPoint measures one (engine, users) point, returning the concurrent
// replay's records and the sequential single-session wall-clock over the
// same flows. The concurrent run goes first — its untimed prepass warms the
// ground-truth cache for these flows — and the sequential baseline then
// replays with precomputation off, so both timed windows contain engine
// work only and the speedup compares like with like.
func runUserPoint(eng engine.Engine, gt *groundtruth.Cache, s core.Settings, flows []*workflow.Workflow, users int) ([]driver.Record, float64, error) {
	cfg := driver.Config{
		TimeRequirement: s.TimeRequirement,
		ThinkTime:       s.ThinkTime,
		DataSizeLabel:   core.SizeLabel(s.DataSize),
	}

	// Concurrent replay: one session per user, jittered like real analysts.
	m := driver.NewMulti(eng, gt, driver.MultiConfig{
		Config: cfg, Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: s.Seed,
	})
	res, err := m.Run(flows)
	if err != nil {
		return nil, 0, err
	}

	// Sequential baseline: one analyst replays every workflow back-to-back
	// against the now-warm ground-truth cache.
	noWarm := false
	seqCfg := cfg
	seqCfg.PrecomputeGroundTruth = &noWarm
	seqStart := time.Now()
	seqRunner := driver.New(eng, gt, seqCfg)
	if _, err := seqRunner.RunWorkflows(flows); err != nil {
		return nil, 0, err
	}
	seqMS := float64(time.Since(seqStart)) / float64(time.Millisecond)
	return res.Records, seqMS, nil
}
