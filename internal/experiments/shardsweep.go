package experiments

import (
	"fmt"
	"time"

	"idebench/internal/core"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/groundtruth"
	"idebench/internal/ingest"
	"idebench/internal/report"
	"idebench/internal/shard"
	"idebench/internal/workflow"
)

// DefaultShardCounts is the scatter-gather scaling axis: how many shard
// backends the coordinator merges. 1 measures pure coordinator overhead
// (fan-out, partial folding, watermark translation) against the single-node
// baseline.
var DefaultShardCounts = []int{1, 2, 4}

// ShardSweepRow is one measured point of the shards-vs-single-node sweep.
type ShardSweepRow struct {
	// Topology is "single" for the baseline engine or "shardN" for an
	// in-process coordinator over N progressive shard backends.
	Topology string
	// Shards is 0 for the baseline.
	Shards int
	Users  int

	Queries       int
	TRViolatedPct float64
	WallClockMS   float64
	QueriesPerSec float64
	P50MS         float64
	P95MS         float64
	P99MS         float64
	// PrepareMS covers partitioning plus preparing every backend.
	PrepareMS float64
	// BitwiseOK is the quiesce gate: after the replay's live ingest fully
	// absorbed, a COUNT query answered bitwise-identically to a cold exact
	// scan of the final table, with the merged watermark at the final
	// global version.
	BitwiseOK bool
	// IngestedRows fed during the replay (hash-routed across shards).
	IngestedRows int64
}

// ShardSweep measures the scatter-gather serving tier against single-node
// execution with the default shard counts and a fixed 4-user ingest-aware
// replay — recorded as BENCH_8.json by benchrun.
func ShardSweep(cfg Config) ([]ShardSweepRow, error) {
	return ShardSweepCounts(cfg, DefaultShardCounts, 4)
}

// ShardSweepCounts replays the same ingest-interleaved multi-user workload
// over (a) a single-node progressive engine and (b) an in-process
// coordinator over N progressive shard backends for each N, all against the
// same generated dataset. Every point gets a fresh prepare (ingest mutates
// the engines) and must pass the quiesce-bitwise gate; the in-process
// coordinator exercises exactly the partition/route/merge/min-watermark
// machinery the multi-process tier serves, minus the wire.
func ShardSweepCounts(cfg Config, shardCounts []int, users int) ([]ShardSweepRow, error) {
	cfg = cfg.withDefaults()
	if users < 1 {
		return nil, fmt.Errorf("experiments: shard sweep needs at least one user")
	}
	if len(shardCounts) == 0 {
		return nil, fmt.Errorf("experiments: empty shard-count sweep")
	}

	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workflowGenerator(db)
	if err != nil {
		return nil, err
	}
	batchRows := cfg.Rows / 100
	if batchRows < 200 {
		batchRows = 200
	}
	flows := make([]*workflow.Workflow, users)
	for i := range flows {
		w, err := gen.Generate(workflow.GenConfig{
			Type: workflow.Mixed, Interactions: cfg.Interactions,
			Seed: cfg.Seed + int64(29000+i), Name: fmt.Sprintf("mixed-u%02d", i),
		})
		if err != nil {
			return nil, err
		}
		flows[i] = workflow.InterleaveIngest(w, IngestEvery, batchRows)
	}
	tr := cfg.TRs[len(cfg.TRs)/2]
	s := core.DefaultSettings()
	s.DataSize = cfg.Rows
	s.Seed = cfg.Seed
	s.ThinkTime = cfg.ThinkTime
	s.TimeRequirement = tr

	type point struct {
		topology string
		shards   int
		prepare  func() (engine.Engine, time.Duration, error)
	}
	points := []point{{
		topology: "single", shards: 0,
		prepare: func() (engine.Engine, time.Duration, error) {
			p, err := core.Prepare("progressive", db, s)
			if err != nil {
				return nil, 0, err
			}
			return p.Engine, p.PrepTime, nil
		},
	}}
	for _, n := range shardCounts {
		n := n
		points = append(points, point{
			topology: fmt.Sprintf("shard%d", n), shards: n,
			prepare: func() (engine.Engine, time.Duration, error) {
				backends := make([]engine.Engine, n)
				for i := range backends {
					backends[i] = progressive.New(progressive.Config{})
				}
				co, err := shard.NewCoordinator(backends...)
				if err != nil {
					return nil, 0, err
				}
				start := time.Now()
				if err := co.Prepare(db, engine.Options{Confidence: s.Confidence, Seed: s.Seed}); err != nil {
					return nil, 0, err
				}
				return co, time.Since(start), nil
			},
		})
	}

	gt := groundtruth.New(db)
	var out []ShardSweepRow
	for _, pt := range points {
		eng, prep, err := pt.prepare()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s prepare: %w", pt.topology, err)
		}
		app := engine.CapabilitiesOf(eng).Appender
		if app == nil {
			return nil, fmt.Errorf("experiments: %s does not support ingestion", pt.topology)
		}
		src, err := ingest.NewSource(2000, cfg.Seed+23)
		if err != nil {
			return nil, err
		}
		h := ingest.NewHarness(db, src, ingest.EngineSink{A: app})
		m := driver.NewMulti(eng, gt, driver.MultiConfig{
			Config: driver.Config{
				TimeRequirement: tr,
				ThinkTime:       cfg.ThinkTime,
				DataSizeLabel:   core.SizeLabel(cfg.Rows),
				IngestSink:      h,
			},
			Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: cfg.Seed,
		})
		res, err := m.Run(flows)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s replay: %w", pt.topology, err)
		}
		bitwise, err := quiesceBitwise(eng, app, h)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s quiesce: %w", pt.topology, err)
		}
		wallMS := float64(res.WallClock) / float64(time.Millisecond)
		row := ShardSweepRow{
			Topology:     pt.topology,
			Shards:       pt.shards,
			Users:        users,
			WallClockMS:  wallMS,
			PrepareMS:    float64(prep) / float64(time.Millisecond),
			BitwiseOK:    bitwise,
			IngestedRows: h.IngestedRows(),
		}
		// One topology per replay, so the user-scaling aggregation collapses
		// to a single group carrying the latency percentiles.
		for _, scal := range report.SummarizeUsers(res.Records) {
			row.Queries = scal.Queries
			row.TRViolatedPct = scal.TRViolatedPct
			row.QueriesPerSec = scal.QueriesPerSec
			row.P50MS = scal.Latency.P50
			row.P95MS = scal.Latency.P95
			row.P99MS = scal.Latency.P99
		}
		out = append(out, row)
	}

	fmt.Fprintln(cfg.Out, "=== Scatter-gather: coordinator over N shards vs single node (ingest-aware mixed workload) ===")
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-8s users=%d prepare=%.1fms wall=%.1fms queries/s=%.1f p95=%.2fms ingested=%d quiesce_bitwise=%v\n",
			r.Topology, r.Users, r.PrepareMS, r.WallClockMS, r.QueriesPerSec, r.P95MS, r.IngestedRows, r.BitwiseOK)
	}
	return out, nil
}
