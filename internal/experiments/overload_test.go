package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"idebench/internal/report"
)

// TestOverloadSweepSmoke runs a two-rung ladder — one rate comfortably under
// capacity, one far past the tightened caps — and asserts the sweep's
// structural guarantees: the knee appears, rejections are explicit, and no
// rate leaks scan consumers.
func TestOverloadSweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	pts, err := OverloadSweepRates(Config{Rows: 40_000, Seed: 1, Out: &buf},
		[]float64{50, 5000}, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	for i, p := range pts {
		if p.Offered == 0 {
			t.Fatalf("point %d offered nothing", i)
		}
		if p.Errors != 0 {
			t.Fatalf("point %d saw %d hard errors", i, p.Errors)
		}
		if p.LeakedConsumers != 0 {
			t.Fatalf("point %d leaked %d scan consumers", i, p.LeakedConsumers)
		}
	}
	// The 5000/s rung offers ~2500 arrivals at caps of 16 inflight: the
	// valves must have engaged.
	if pts[1].Rejected == 0 && pts[1].Shed == 0 {
		t.Fatalf("high rung engaged no overload valve: %+v", pts[1])
	}
	// The knee must exist. On an unloaded host it sits at the 5000/s rung,
	// but under -race or a busy machine even 50/s can shed a late query, so
	// only its presence is asserted, not its exact position.
	if knee := report.FindKnee(pts); knee < 0 {
		t.Fatalf("no knee found: %+v", pts)
	}
	if !strings.Contains(buf.String(), "knee at") {
		t.Fatalf("report missing knee line:\n%s", buf.String())
	}
	// Past the knee the admitted tail stays bounded: the generator's own
	// hard timeout is 2s, and shedding should keep finals well under it.
	if pts[1].Completed > 0 && pts[1].DoneP99 > 1500 {
		t.Fatalf("admitted done-p99 past the knee is %vms — shedding is not bounding the tail", pts[1].DoneP99)
	}
}
