package experiments

import (
	"fmt"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/report"
	"idebench/internal/workflow"
)

// IngestEvery is how many workflow interactions separate consecutive
// ingest events in the generated ingest-aware workload.
const IngestEvery = 3

// IngestSweepRow is one measured point of the live-ingestion sweep: U
// concurrent users replaying ingest-interleaved workflows over one prepared
// engine while batches land, plus the post-quiesce correctness verdict.
type IngestSweepRow struct {
	report.IngestScaling
	// WallClockMS / QueriesPerSec are the replay's aggregate throughput.
	WallClockMS   float64
	QueriesPerSec float64
	// BitwiseOK reports the quiesce gate: after every batch was absorbed, a
	// fresh COUNT query on the engine was bitwise identical to a cold exact
	// scan over the final table (sampling engines, whose complete answer is
	// an estimate by design, pass via the total-within-tolerance contract
	// instead).
	BitwiseOK bool
}

// IngestSweep measures ingestion-under-load scaling with the default user
// counts (1/2/4/8) — `idebench exp -name ingest`, recorded as BENCH_5.json
// by benchrun.
func IngestSweep(cfg Config) ([]IngestSweepRow, error) {
	return IngestSweepUsers(cfg, DefaultUserCounts)
}

// IngestSweepUsers is IngestSweep with an explicit user-count axis. For
// each engine and user count U it replays U mixed workflows, each with an
// ingest event every IngestEvery interactions, as U concurrent users over
// one freshly prepared engine (appends mutate the engine, so points never
// share one), evaluating every result against the ground truth of the data
// version its watermark names. After each point the engine must have
// absorbed every batch (watermark check) and answer a COUNT query bitwise
// identically to the final table's exact scan — the incremental path may
// not drift from a cold rebuild by even one row.
func IngestSweepUsers(cfg Config, userCounts []int) ([]IngestSweepRow, error) {
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = []string{"progressive", "exactdb"}
	}
	cfg = cfg.withDefaults()
	maxUsers := 0
	for _, u := range userCounts {
		if u > maxUsers {
			maxUsers = u
		}
	}
	if maxUsers == 0 {
		return nil, fmt.Errorf("experiments: empty user-count sweep")
	}

	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workflowGenerator(db)
	if err != nil {
		return nil, err
	}
	batchRows := cfg.Rows / 100
	if batchRows < 200 {
		batchRows = 200
	}
	flows := make([]*workflow.Workflow, maxUsers)
	for i := range flows {
		w, err := gen.Generate(workflow.GenConfig{
			Type: workflow.Mixed, Interactions: cfg.Interactions,
			Seed: cfg.Seed + int64(17000+i), Name: fmt.Sprintf("mixed-u%02d", i),
		})
		if err != nil {
			return nil, err
		}
		flows[i] = workflow.InterleaveIngest(w, IngestEvery, batchRows)
	}

	tr := cfg.TRs[len(cfg.TRs)/2]
	type pointKey struct {
		driver string
		users  int
	}
	type pointStat struct {
		ingested   int64
		rowsPerSec float64
		wallMS     float64
		queriesSec float64
		bitwiseOK  bool
	}
	stats := map[pointKey]pointStat{}
	var allRecords []driver.Record
	seenDriver := map[string]string{}
	for _, name := range engines {
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.ThinkTime = cfg.ThinkTime
		s.TimeRequirement = tr
		for _, users := range userCounts {
			// Fresh engine per point: live ingestion mutates prepared state.
			p, err := core.Prepare(name, db, s)
			if err != nil {
				return nil, err
			}
			drv := p.Engine.Name()
			if prev, ok := seenDriver[drv]; ok && prev != name {
				return nil, fmt.Errorf("experiments: engines %q and %q both report driver name %q",
					prev, name, drv)
			}
			seenDriver[drv] = name
			app := engine.CapabilitiesOf(p.Engine).Appender
			if app == nil {
				return nil, fmt.Errorf("experiments: engine %s does not support ingestion", name)
			}
			src, err := ingest.NewSource(2000, cfg.Seed+23)
			if err != nil {
				return nil, err
			}
			h := ingest.NewHarness(db, src, ingest.EngineSink{A: app})

			m := driver.NewMulti(p.Engine, p.GT, driver.MultiConfig{
				Config: driver.Config{
					TimeRequirement: tr,
					ThinkTime:       cfg.ThinkTime,
					DataSizeLabel:   core.SizeLabel(cfg.Rows),
					IngestSink:      h,
				},
				Users: users, ThinkJitter: driver.DefaultThinkJitter, Seed: cfg.Seed,
			})
			res, err := m.Run(flows[:users])
			if err != nil {
				return nil, fmt.Errorf("experiments: %s users=%d: %w", name, users, err)
			}
			// MultiResult.WallClock closes when the last user finishes the
			// replay — before the deferred ground-truth resolution runs — so
			// throughput is divided by the replay window only, like every
			// other sweep's numbers.
			wallMS := float64(res.WallClock) / float64(time.Millisecond)

			bitwise, err := quiesceBitwise(p.Engine, app, h)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s users=%d quiesce: %w", name, users, err)
			}
			allRecords = append(allRecords, res.Records...)
			st := pointStat{ingested: h.IngestedRows(), wallMS: wallMS, bitwiseOK: bitwise}
			if wallMS > 0 {
				st.rowsPerSec = float64(h.IngestedRows()) / (wallMS / 1000)
				st.queriesSec = float64(len(res.Records)) / (wallMS / 1000)
			}
			stats[pointKey{drv, users}] = st
		}
	}

	var out []IngestSweepRow
	for _, scal := range report.SummarizeIngest(allRecords) {
		st := stats[pointKey{scal.Driver, scal.Users}]
		scal.IngestedRows = st.ingested
		scal.IngestRowsPerSec = st.rowsPerSec
		out = append(out, IngestSweepRow{
			IngestScaling: scal,
			WallClockMS:   st.wallMS,
			QueriesPerSec: st.queriesSec,
			BitwiseOK:     st.bitwiseOK,
		})
	}

	fmt.Fprintln(cfg.Out, "=== Live ingestion: append-only batches during concurrent replay (mixed workload) ===")
	scal := make([]report.IngestScaling, len(out))
	for i, r := range out {
		scal[i] = r.IngestScaling
	}
	if err := report.RenderIngestSweep(cfg.Out, scal); err != nil {
		return nil, err
	}
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-12s users=%d wall=%.1fms queries/s=%.1f ingest_rows/s=%.0f quiesce_bitwise=%v\n",
			r.Driver, r.Users, r.WallClockMS, r.QueriesPerSec, r.IngestRowsPerSec, r.BitwiseOK)
	}
	return out, nil
}

// quiesceBitwise verifies the incremental path against a cold rebuild: the
// engine's watermark must equal the harness's (every batch absorbed), and a
// fresh COUNT-by-carrier query must match the final table's exact scan —
// bitwise when the engine answers exactly (counts are integers, so any lost
// or double-folded row shows), or total-within-tolerance for sampling
// engines whose complete answer is an estimate by design.
func quiesceBitwise(eng engine.Engine, app engine.Appender, h *ingest.Harness) (bool, error) {
	want := h.Watermark()
	if w := app.Watermark(); w != want {
		return false, fmt.Errorf("engine watermark %d, harness %d", w, want)
	}
	q := &query.Query{
		VizName: "quiesce_count", Table: h.FinalView().Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	gt, err := h.TruthAt(q, want)
	if err != nil {
		return false, err
	}
	sess := eng.OpenSession()
	defer sess.Close()
	sess.WorkflowStart()
	defer sess.WorkflowEnd()
	hdl, err := sess.StartQuery(q)
	if err != nil {
		return false, err
	}
	select {
	case <-hdl.Done():
	case <-time.After(60 * time.Second):
		return false, fmt.Errorf("quiesce query did not complete")
	}
	res := hdl.Snapshot()
	if res == nil {
		return false, fmt.Errorf("quiesce query returned no result")
	}
	if res.Watermark != want {
		return false, fmt.Errorf("quiesce result watermark %d, want %d", res.Watermark, want)
	}
	if !res.Complete {
		// A sampling engine's finished answer is an estimate (Complete stays
		// false by design): hold it to the stratified-sampling contract —
		// the scaled total tracks the grown population.
		var gtTotal, resTotal float64
		for _, bv := range gt.Bins {
			gtTotal += bv.Values[0]
		}
		for _, bv := range res.Bins {
			resTotal += bv.Values[0]
		}
		if gtTotal == 0 {
			return len(res.Bins) == 0, nil
		}
		if diff := (resTotal - gtTotal) / gtTotal; diff < -0.15 || diff > 0.15 {
			return false, fmt.Errorf("quiesce estimate total %v, want within 15%% of %v", resTotal, gtTotal)
		}
		return true, nil
	}
	if len(res.Bins) != len(gt.Bins) {
		return false, fmt.Errorf("quiesce count: %d bins, want %d", len(res.Bins), len(gt.Bins))
	}
	for k, wv := range gt.Bins {
		gv, ok := res.Bins[k]
		if !ok || gv.Values[0] != wv.Values[0] {
			return false, fmt.Errorf("quiesce count bin %v: got %v, want exactly %v", k, gv, wv.Values[0])
		}
	}
	return true, nil
}
