package experiments

import (
	"fmt"
	"math"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// Fig6f replicates Exp. 3 (Sec. 5.4): the speculative extension of the
// progressive engine across increasing think times. The custom workflow
// follows the paper exactly:
//
//  1. a 2D count histogram (100 bins) of arrival vs departure delays,
//  2. a 1D count histogram of carriers,
//  3. a link setting the 1D histogram as source and the 2D one as target,
//  4. a single-carrier selection forcing the 2D histogram to update.
//
// With speculation enabled, the engine uses the think time before
// interaction 4 to pre-execute the per-carrier selection queries, so longer
// think times leave fewer missing bins at the fixed time requirement.
func Fig6f(cfg Config) ([]ThinkTimeResult, error) {
	cfg = cfg.withDefaults()
	// The Exp.-3 query (single-carrier filtered 2D count) is cheap: at the
	// default size the progressive engine finishes it inside even the
	// smallest TR, leaving no missing bins for speculation to recover. Run
	// this experiment at 4× the configured size so partial results are
	// partial (the paper had the same property: 500M rows vs a 3s TR).
	db, err := core.BuildData(4*cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The paper uses TR=3s (mid sweep). Our progressive substrate covers a
	// larger data fraction per TR than IDEA did, so the think-time effect
	// is measured at the smallest TR of the sweep (≙0.5s), where partial
	// results still have missing bins for speculation to recover.
	tr := cfg.TRs[0]
	thinks := core.DefaultThinkTimes()

	carriers := db.Fact.Column("carrier")
	if carriers == nil {
		return nil, fmt.Errorf("experiments: dataset has no carrier column")
	}
	// The paper selects a single carrier; use the most frequent one (its
	// filtered 2D histogram has the richest bin structure) and repeat each
	// think-time run to smooth scheduler noise.
	counts := make([]int, carriers.Dict.Len())
	for _, c := range carriers.Codes {
		counts[c]++
	}
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	top := carriers.Dict.Value(uint32(best))
	sel := []string{top, top, top} // 3 repetitions per think time

	var out []ThinkTimeResult
	for _, speculative := range []bool{false, true} {
		engName := "progressive"
		if speculative {
			engName = "progressive-spec"
		}
		s := core.DefaultSettings()
		s.DataSize = cfg.Rows
		s.Seed = cfg.Seed
		s.TimeRequirement = tr
		p, err := core.Prepare(engName, db, s)
		if err != nil {
			return nil, err
		}
		for _, think := range thinks {
			s.ThinkTime = think
			var missing float64
			for _, carrier := range sel {
				w := thinkTimeWorkflow(db, carrier)
				recs, err := p.Run([]*workflow.Workflow{w}, s)
				if err != nil {
					return nil, err
				}
				// The last record is the 2D histogram update after the
				// selection (interaction 4).
				last := recs[len(recs)-1]
				if last.InteractionID != 3 || last.VizName != "viz_2d" {
					return nil, fmt.Errorf("experiments: unexpected final record %+v", last)
				}
				m := last.Metrics.MissingBins
				if math.IsNaN(m) {
					m = 1
				}
				missing += m
			}
			out = append(out, ThinkTimeResult{
				ThinkTime:   think,
				MissingBins: missing / float64(len(sel)),
				Speculative: speculative,
			})
		}
	}

	fmt.Fprintf(cfg.Out, "=== Figure 6f: missing bins vs think time (tr=%v) ===\n", tr)
	for _, r := range out {
		mode := "baseline   "
		if r.Speculative {
			mode = "speculative"
		}
		fmt.Fprintf(cfg.Out, "%s think=%-6v missing_bins=%.3f\n", mode, r.ThinkTime, r.MissingBins)
	}
	return out, nil
}

// thinkTimeWorkflow builds the paper's 4-interaction Exp.-3 workflow with
// the given carrier selected in step 4.
func thinkTimeWorkflow(db *dataset.Database, carrier string) *workflow.Workflow {
	arr := quantBinning(db, "arr_delay", 10)
	dep := quantBinning(db, "dep_delay", 10)
	spec2D := &workflow.VizSpec{
		Name:  "viz_2d",
		Table: db.Fact.Name,
		Bins:  []query.Binning{arr, dep},
		Aggs:  []query.Aggregate{{Func: query.Count}},
	}
	spec1D := &workflow.VizSpec{
		Name:  "viz_1d",
		Table: db.Fact.Name,
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
	}
	return &workflow.Workflow{
		Name: "exp3-" + carrier,
		Type: workflow.SequentialLinking,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "viz_2d", Spec: spec2D},
			{Kind: workflow.KindCreateViz, Viz: "viz_1d", Spec: spec1D},
			{Kind: workflow.KindLink, From: "viz_1d", To: "viz_2d"},
			{Kind: workflow.KindSelect, Viz: "viz_1d", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{carrier},
			}},
		},
	}
}

// quantBinning derives a bins-count binning from the column's observed
// range.
func quantBinning(db *dataset.Database, field string, bins int) query.Binning {
	col := db.Fact.Column(field)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range col.Nums {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	return query.Binning{
		Field:  field,
		Kind:   dataset.Quantitative,
		Width:  (hi - lo) / float64(bins),
		Origin: lo,
	}
}

// trOf is a tiny helper used by tests to confirm sweep ordering.
func trOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
