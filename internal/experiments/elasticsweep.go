package experiments

import (
	"fmt"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/driver"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
	"idebench/internal/groundtruth"
	"idebench/internal/ingest"
	"idebench/internal/query"
	"idebench/internal/report"
	"idebench/internal/shard"
	"idebench/internal/workflow"
)

// ElasticRow is one measured point of the availability-vs-dead-shards
// sweep: the same multi-user replay against a replicated coordinator with
// a progressively worse failure injected before the run.
type ElasticRow struct {
	// Scenario names the injected failure: "all_up", "replica_dead" (one
	// replica of one partition killed; its sibling covers) or
	// "partition_dead" (every replica of one partition killed; answers
	// degrade to the surviving partitions' population).
	Scenario             string
	Partitions           int
	ReplicasPerPartition int
	DeadReplicas         int
	Users                int

	Queries       int
	TRViolatedPct float64
	WallClockMS   float64
	QueriesPerSec float64
	P50MS         float64
	P95MS         float64
	P99MS         float64
	PrepareMS     float64

	// Coverage of a post-replay probe COUNT: how much of the population the
	// merged answer actually saw. A full-coverage point has
	// PartitionsAnswered == PartitionsTotal and fraction 1.
	PartitionsAnswered int
	PartitionsTotal    int
	PopulationFraction float64
	Degraded           bool

	// IngestedRows fed during the replay. The dead-partition scenario
	// replays without ingest: its partition cannot absorb batches, so a
	// quiesce gate would be meaningless there.
	IngestedRows int64
	// BitwiseOK is the quiesce gate, enforced on every fully-covered point:
	// after the replay's ingest fully absorbed, a COUNT query answered
	// bitwise-identically to a cold exact scan of the final table. Degraded
	// points skip it (recorded false) — their answers are honest about
	// missing rows via the coverage block, not bitwise-complete.
	BitwiseOK bool
}

// ElasticSweep runs the default elasticity ladder — 2 partitions × 2
// replicas, 4 users; nothing dead, one replica dead, one whole partition
// dead — recorded as BENCH_9.json by benchrun.
func ElasticSweep(cfg Config) ([]ElasticRow, error) {
	return ElasticSweepSpec(cfg, 2, 2, 4)
}

// ElasticSweepSpec replays the same multi-user workload against a fresh
// parts×reps replicated coordinator per scenario, killing the scenario's
// replicas before the run. It errors if any replay fails (a dead replica
// must cost latency, never a failed query), if a scenario's post-replay
// coverage differs from what the injected failure predicts, or if a
// fully-covered point misses the quiesce-bitwise gate.
func ElasticSweepSpec(cfg Config, parts, reps, users int) ([]ElasticRow, error) {
	cfg = cfg.withDefaults()
	if parts < 2 || reps < 2 {
		return nil, fmt.Errorf("experiments: elastic sweep needs >=2 partitions and >=2 replicas (got %d x %d)", parts, reps)
	}

	db, err := core.BuildData(cfg.Rows, false, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workflowGenerator(db)
	if err != nil {
		return nil, err
	}
	batchRows := cfg.Rows / 100
	if batchRows < 200 {
		batchRows = 200
	}
	// Two flow sets: ingest-interleaved for scenarios where every partition
	// can still absorb batches, plain for the dead-partition scenario.
	plain := make([]*workflow.Workflow, users)
	flows := make([]*workflow.Workflow, users)
	for i := range flows {
		w, err := gen.Generate(workflow.GenConfig{
			Type: workflow.Mixed, Interactions: cfg.Interactions,
			Seed: cfg.Seed + int64(31000+i), Name: fmt.Sprintf("mixed-u%02d", i),
		})
		if err != nil {
			return nil, err
		}
		plain[i] = w
		flows[i] = workflow.InterleaveIngest(w, IngestEvery, batchRows)
	}
	tr := cfg.TRs[len(cfg.TRs)/2]
	s := core.DefaultSettings()
	s.DataSize = cfg.Rows
	s.Seed = cfg.Seed

	type scenario struct {
		name   string
		kills  [][2]int // (partition, replica ordinal) to kill before the replay
		ingest bool
	}
	scenarios := []scenario{
		{name: "all_up", ingest: true},
		{name: "replica_dead", kills: [][2]int{{0, 1}}, ingest: true},
	}
	partDead := make([][2]int, reps)
	for r := 0; r < reps; r++ {
		partDead[r] = [2]int{0, r}
	}
	scenarios = append(scenarios, scenario{name: "partition_dead", kills: partDead})

	gt := groundtruth.New(db)
	var out []ElasticRow
	for _, sc := range scenarios {
		// Fresh tier per scenario: kills and ingest both mutate state.
		faults := make([][]*shard.Faulty, parts)
		sets := make([][]engine.Engine, parts)
		for p := range sets {
			faults[p] = make([]*shard.Faulty, reps)
			sets[p] = make([]engine.Engine, reps)
			for r := range sets[p] {
				f := shard.NewFaulty(progressive.New(progressive.Config{}))
				faults[p][r] = f
				sets[p][r] = f
			}
		}
		co, err := shard.NewReplicated(shard.Options{}, sets...)
		if err != nil {
			return nil, err
		}
		prepStart := time.Now()
		if err := co.Prepare(db, engine.Options{Confidence: s.Confidence, Seed: s.Seed}); err != nil {
			return nil, fmt.Errorf("experiments: %s prepare: %w", sc.name, err)
		}
		prep := time.Since(prepStart)
		for _, k := range sc.kills {
			faults[k[0]][k[1]].Kill()
		}
		// Health loop, as the serving tier runs it: the first pass marks the
		// kills before the replay starts, later passes keep flags honest.
		co.CheckHealth()
		stopHealth := co.StartHealthLoop(100 * time.Millisecond)

		dcfg := driver.Config{
			TimeRequirement: tr,
			ThinkTime:       cfg.ThinkTime,
			DataSizeLabel:   core.SizeLabel(cfg.Rows),
		}
		replayFlows := plain
		var h *ingest.Harness
		if sc.ingest {
			src, err := ingest.NewSource(2000, cfg.Seed+23)
			if err != nil {
				return nil, err
			}
			app := engine.CapabilitiesOf(co).Appender
			h = ingest.NewHarness(db, src, ingest.EngineSink{A: app})
			dcfg.IngestSink = h
			replayFlows = flows
		}
		m := driver.NewMulti(co, gt, driver.MultiConfig{
			Config: dcfg,
			Users:  users, ThinkJitter: driver.DefaultThinkJitter, Seed: cfg.Seed,
		})
		res, err := m.Run(replayFlows)
		stopHealth()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s replay: %w", sc.name, err)
		}

		probe, err := coverageProbe(co, db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s probe: %w", sc.name, err)
		}
		row := ElasticRow{
			Scenario:             sc.name,
			Partitions:           parts,
			ReplicasPerPartition: reps,
			DeadReplicas:         len(sc.kills),
			Users:                users,
			WallClockMS:          float64(res.WallClock) / float64(time.Millisecond),
			PrepareMS:            float64(prep) / float64(time.Millisecond),
			PartitionsAnswered:   parts,
			PartitionsTotal:      parts,
			PopulationFraction:   1,
		}
		if cov := probe.Coverage; cov != nil && !cov.Full() {
			row.PartitionsAnswered = cov.PartitionsAnswered
			row.PartitionsTotal = cov.PartitionsTotal
			row.PopulationFraction = cov.PopulationFraction
			row.Degraded = cov.Degraded
		}
		// The injected failure predicts the coverage exactly: only the
		// dead-partition scenario may (and must) degrade, by one partition.
		wantAnswered := parts
		if !sc.ingest {
			wantAnswered = parts - 1
		}
		if row.PartitionsAnswered != wantAnswered || row.Degraded != (wantAnswered < parts) {
			return nil, fmt.Errorf("experiments: %s answered %d/%d partitions (degraded=%v), want %d/%d",
				sc.name, row.PartitionsAnswered, row.PartitionsTotal, row.Degraded, wantAnswered, parts)
		}
		if sc.ingest {
			row.IngestedRows = h.IngestedRows()
			bitwise, err := quiesceBitwise(co, engine.CapabilitiesOf(co).Appender, h)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s quiesce: %w", sc.name, err)
			}
			row.BitwiseOK = bitwise
		}
		for _, scal := range report.SummarizeUsers(res.Records) {
			row.Queries = scal.Queries
			row.TRViolatedPct = scal.TRViolatedPct
			row.QueriesPerSec = scal.QueriesPerSec
			row.P50MS = scal.Latency.P50
			row.P95MS = scal.Latency.P95
			row.P99MS = scal.Latency.P99
		}
		out = append(out, row)
	}

	fmt.Fprintf(cfg.Out, "=== Elasticity: %dx%d replicated coordinator under injected failures ===\n", parts, reps)
	for _, r := range out {
		fmt.Fprintf(cfg.Out, "%-15s dead=%d queries=%d p95=%.2fms coverage=%d/%d (%.2f) degraded=%v ingested=%d quiesce_bitwise=%v\n",
			r.Scenario, r.DeadReplicas, r.Queries, r.P95MS, r.PartitionsAnswered, r.PartitionsTotal,
			r.PopulationFraction, r.Degraded, r.IngestedRows, r.BitwiseOK)
	}
	return out, nil
}

// coverageProbe runs one COUNT-by-carrier query to completion and returns
// its merged result, whose Coverage block (nil when full) states how much
// of the population answered.
func coverageProbe(eng engine.Engine, db *dataset.Database) (*query.Result, error) {
	q := &query.Query{
		VizName: "coverage_count", Table: db.Fact.Name,
		Bins: []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs: []query.Aggregate{{Func: query.Count}},
	}
	sess := eng.OpenSession()
	defer sess.Close()
	sess.WorkflowStart()
	defer sess.WorkflowEnd()
	hdl, err := sess.StartQuery(q)
	if err != nil {
		return nil, err
	}
	select {
	case <-hdl.Done():
	case <-time.After(60 * time.Second):
		return nil, fmt.Errorf("coverage probe did not complete")
	}
	res := hdl.Snapshot()
	if res == nil {
		return nil, fmt.Errorf("coverage probe was refused (nil snapshot)")
	}
	return res, nil
}
