package workflow

import (
	"fmt"
	"math"
	"math/rand"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

// GenConfig parameterizes the workload generator.
type GenConfig struct {
	// Type selects the interaction pattern; Mixed blends all four.
	Type Type
	// Interactions is the workflow length (default 18).
	Interactions int
	// MaxVizs caps simultaneously live visualizations (default 8).
	MaxVizs int
	// Seed drives all randomness; identical configs generate identical
	// workflows.
	Seed int64
	// Name overrides the generated workflow name.
	Name string
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Interactions <= 0 {
		c.Interactions = 18
	}
	if c.MaxVizs <= 0 {
		c.MaxVizs = 8
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s-%d", c.Type, c.Seed)
	}
	return c
}

// fieldMeta summarizes one attribute for random spec generation.
type fieldMeta struct {
	field dataset.Field
	// lo/hi bound quantitative values; dict holds nominal values.
	lo, hi float64
	values []string
}

// Generator produces random workflows whose specs are valid against a
// concrete table: quantitative bin widths derive from observed value ranges
// (the paper's "pre-defined number of bins" strategy) and filter values are
// drawn from the table's actual domain.
type Generator struct {
	table  string
	fields []fieldMeta
	nom    []int // indices of nominal fields
	quant  []int // indices of quantitative fields
}

// NewGenerator inspects the table and prepares a generator.
func NewGenerator(tbl *dataset.Table) (*Generator, error) {
	if tbl.NumRows() == 0 {
		return nil, dataset.ErrNoRows
	}
	g := &Generator{table: tbl.Name}
	for i, f := range tbl.Schema.Fields {
		m := fieldMeta{field: f}
		col := tbl.Columns[i]
		if f.Kind == dataset.Quantitative {
			m.lo, m.hi = math.Inf(1), math.Inf(-1)
			for _, v := range col.Nums {
				if v < m.lo {
					m.lo = v
				}
				if v > m.hi {
					m.hi = v
				}
			}
			if m.hi <= m.lo {
				m.hi = m.lo + 1
			}
			g.quant = append(g.quant, len(g.fields))
		} else {
			m.values = append(m.values, col.Dict.Values()...)
			if len(m.values) == 0 {
				continue
			}
			g.nom = append(g.nom, len(g.fields))
		}
		g.fields = append(g.fields, m)
	}
	if len(g.fields) == 0 {
		return nil, fmt.Errorf("workflow: table %q has no usable fields", tbl.Name)
	}
	return g, nil
}

// Generate produces one workflow according to cfg.
func (g *Generator) Generate(cfg GenConfig) (*Workflow, error) {
	cfg = cfg.withDefaults()
	if !cfg.Type.Valid() {
		return nil, fmt.Errorf("workflow: unknown type %q", cfg.Type)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &genState{g: g, rng: rng, cfg: cfg, flow: &Workflow{Name: cfg.Name, Type: cfg.Type}}

	for len(s.flow.Interactions) < cfg.Interactions {
		switch cfg.Type {
		case IndependentBrowsing:
			s.stepIndependent()
		case SequentialLinking:
			s.stepSequential()
		case OneToNLinking:
			s.stepOneToN()
		case NToOneLinking:
			s.stepNToOne()
		case Mixed:
			s.stepMixed()
		}
	}
	s.flow.Interactions = s.flow.Interactions[:cfg.Interactions]
	if err := s.flow.Validate(); err != nil {
		return nil, fmt.Errorf("workflow: generated invalid workflow: %w", err)
	}
	return s.flow, nil
}

// GenerateSet produces the paper's default configuration: count workflows
// per pure type plus count mixed ones (Sec. 5.1 "10 workflows for each of
// the workflow types ... as well as 10 mixed workflows").
func (g *Generator) GenerateSet(count, interactions int, seed int64) ([]*Workflow, error) {
	var out []*Workflow
	types := append(append([]Type(nil), AllTypes...), Mixed)
	for ti, typ := range types {
		for i := 0; i < count; i++ {
			w, err := g.Generate(GenConfig{
				Type:         typ,
				Interactions: interactions,
				Seed:         seed + int64(ti*1000+i),
				Name:         fmt.Sprintf("%s-%02d", typ, i),
			})
			if err != nil {
				return nil, err
			}
			out = append(out, w)
		}
	}
	return out, nil
}

// InterleaveIngest returns a copy of w with an ingest event of `rows` rows
// inserted after every `every` original interactions — the ingest-aware
// workload shape: data keeps arriving while the analyst explores. The copy
// is deterministic (no randomness), so interleaved workflow sets inherit
// the generator's byte-identical-per-seed contract.
func InterleaveIngest(w *Workflow, every, rows int) *Workflow {
	if every <= 0 || rows <= 0 {
		return w
	}
	out := &Workflow{Name: w.Name + "+ingest", Type: w.Type}
	for i, in := range w.Interactions {
		out.Interactions = append(out.Interactions, in)
		if (i+1)%every == 0 && i != len(w.Interactions)-1 {
			out.Interactions = append(out.Interactions, Interaction{Kind: KindIngest, Rows: rows})
		}
	}
	return out
}

// InterleaveIngestAll applies InterleaveIngest to every workflow.
func InterleaveIngestAll(flows []*Workflow, every, rows int) []*Workflow {
	out := make([]*Workflow, len(flows))
	for i, w := range flows {
		out[i] = InterleaveIngest(w, every, rows)
	}
	return out
}

// genState tracks the evolving graph shape during generation.
type genState struct {
	g    *Generator
	rng  *rand.Rand
	cfg  GenConfig
	flow *Workflow

	vizCount int
	live     []string            // live viz names in creation order
	links    map[string][]string // from -> to
	specs    map[string]*VizSpec
}

func (s *genState) emit(in Interaction) { s.flow.Interactions = append(s.flow.Interactions, in) }

func (s *genState) createViz() string {
	name := fmt.Sprintf("viz_%d", s.vizCount)
	s.vizCount++
	spec := s.randomSpec(name)
	if s.specs == nil {
		s.specs = map[string]*VizSpec{}
		s.links = map[string][]string{}
	}
	s.specs[name] = spec
	s.live = append(s.live, name)
	s.emit(Interaction{Kind: KindCreateViz, Viz: name, Spec: spec})
	return name
}

func (s *genState) link(from, to string) bool {
	for _, t := range s.links[from] {
		if t == to {
			return false
		}
	}
	s.links[from] = append(s.links[from], to)
	s.emit(Interaction{Kind: KindLink, From: from, To: to})
	return true
}

func (s *genState) filterViz(viz string) {
	p := s.randomPredicate()
	s.emit(Interaction{Kind: KindFilter, Viz: viz, Predicate: &p})
}

func (s *genState) selectOn(viz string) {
	spec := s.specs[viz]
	p := s.randomSelection(spec)
	s.emit(Interaction{Kind: KindSelect, Viz: viz, Predicate: &p})
}

func (s *genState) discard(viz string) {
	for i, v := range s.live {
		if v == viz {
			s.live = append(s.live[:i], s.live[i+1:]...)
			break
		}
	}
	delete(s.specs, viz)
	delete(s.links, viz)
	for from := range s.links {
		out := s.links[from][:0]
		for _, t := range s.links[from] {
			if t != viz {
				out = append(out, t)
			}
		}
		s.links[from] = out
	}
	s.emit(Interaction{Kind: KindDiscard, Viz: viz})
}

func (s *genState) randomLive() string {
	return s.live[s.rng.Intn(len(s.live))]
}

// --- per-type Markov steps -------------------------------------------------

// stepIndependent: users browse dimensions and filter single visualizations.
func (s *genState) stepIndependent() {
	switch {
	case len(s.live) == 0:
		s.createViz()
	case len(s.live) < s.cfg.MaxVizs && s.rng.Float64() < 0.40:
		s.createViz()
	case len(s.live) > 2 && s.rng.Float64() < 0.08:
		s.discard(s.randomLive())
	default:
		s.filterViz(s.randomLive())
	}
}

// stepSequential: a chain viz_0 -> viz_1 -> ... built incrementally; users
// drill down by selecting on chain members.
func (s *genState) stepSequential() {
	switch {
	case len(s.live) == 0:
		s.createViz()
	case len(s.live) < s.cfg.MaxVizs && s.rng.Float64() < 0.35:
		prev := s.live[len(s.live)-1]
		name := s.createViz()
		s.link(prev, name)
	default:
		s.selectOn(s.randomLive())
	}
}

// stepOneToN: one source fans out to N targets; selections on the source
// force all targets to update concurrently.
func (s *genState) stepOneToN() {
	switch {
	case len(s.live) == 0:
		s.createViz()
	case len(s.live) < s.cfg.MaxVizs && (len(s.live) < 3 || s.rng.Float64() < 0.30):
		src := s.live[0]
		name := s.createViz()
		s.link(src, name)
	default:
		s.selectOn(s.live[0])
	}
}

// stepNToOne: N sources all feed one target; filters/selections on any
// source update the shared target (incremental multi-dimension filters).
func (s *genState) stepNToOne() {
	switch {
	case len(s.live) == 0:
		s.createViz() // the shared target
	case len(s.live) < s.cfg.MaxVizs && (len(s.live) < 3 || s.rng.Float64() < 0.30):
		name := s.createViz()
		s.link(name, s.live[0])
	case s.rng.Float64() < 0.5 && len(s.live) > 1:
		src := s.live[1+s.rng.Intn(len(s.live)-1)]
		s.selectOn(src)
	default:
		if len(s.live) > 1 {
			s.filterViz(s.live[1+s.rng.Intn(len(s.live)-1)])
		} else {
			s.filterViz(s.live[0])
		}
	}
}

// stepMixed blends all behaviours.
func (s *genState) stepMixed() {
	r := s.rng.Float64()
	switch {
	case len(s.live) == 0 || (len(s.live) < s.cfg.MaxVizs && r < 0.30):
		name := s.createViz()
		// Half of new vizs get linked to an existing one.
		if len(s.live) > 1 && s.rng.Float64() < 0.5 {
			other := s.live[s.rng.Intn(len(s.live)-1)]
			if s.rng.Float64() < 0.5 {
				s.link(other, name)
			} else {
				s.link(name, other)
			}
		}
	case r < 0.55:
		s.filterViz(s.randomLive())
	case r < 0.85:
		s.selectOn(s.randomLive())
	case r < 0.92 && len(s.live) >= 2:
		a, b := s.randomLive(), s.randomLive()
		if a != b {
			s.link(a, b)
		}
	case len(s.live) > 2:
		s.discard(s.randomLive())
	default:
		s.filterViz(s.randomLive())
	}
}

// --- random specs, filters, selections --------------------------------------

// binCount1D is the default number of bins for 1D visualizations; 2D plots
// use coarser bins per dimension (paper Exp. 3 uses a 100-bin 2D histogram
// and a 25-bin 1D histogram).
const (
	binCount1D = 25
	binCount2D = 10
)

func (s *genState) randomBinning(fi int, dims int) query.Binning {
	m := s.g.fields[fi]
	if m.field.Kind == dataset.Nominal {
		return query.Binning{Field: m.field.Name, Kind: dataset.Nominal}
	}
	bins := binCount1D
	if dims == 2 {
		bins = binCount2D
	}
	width := (m.hi - m.lo) / float64(bins)
	if width <= 0 {
		width = 1
	}
	return query.Binning{Field: m.field.Name, Kind: dataset.Quantitative, Width: width, Origin: m.lo}
}

func (s *genState) randomSpec(name string) *VizSpec {
	dims := 1
	if s.rng.Float64() < 0.25 {
		dims = 2
	}
	fields := s.rng.Perm(len(s.g.fields))[:dims]
	bins := make([]query.Binning, dims)
	for i, fi := range fields {
		bins[i] = s.randomBinning(fi, dims)
	}

	// Aggregate distribution approximating the paper's detailed report
	// (Table 1 is dominated by COUNT and AVG).
	var agg query.Aggregate
	r := s.rng.Float64()
	switch {
	case r < 0.42 || len(s.g.quant) == 0:
		agg = query.Aggregate{Func: query.Count}
	case r < 0.80:
		agg = query.Aggregate{Func: query.Avg, Field: s.randomQuantField()}
	case r < 0.90:
		agg = query.Aggregate{Func: query.Sum, Field: s.randomQuantField()}
	case r < 0.95:
		agg = query.Aggregate{Func: query.Min, Field: s.randomQuantField()}
	default:
		agg = query.Aggregate{Func: query.Max, Field: s.randomQuantField()}
	}
	return &VizSpec{Name: name, Table: s.g.table, Bins: bins, Aggs: []query.Aggregate{agg}}
}

func (s *genState) randomQuantField() string {
	return s.g.fields[s.g.quant[s.rng.Intn(len(s.g.quant))]].field.Name
}

// randomPredicate draws a filter predicate over any attribute; specificity
// varies widely, which the paper identifies as the dominant performance
// factor.
func (s *genState) randomPredicate() query.Predicate {
	if len(s.g.nom) > 0 && (len(s.g.quant) == 0 || s.rng.Float64() < 0.5) {
		m := s.g.fields[s.g.nom[s.rng.Intn(len(s.g.nom))]]
		k := 1 + s.rng.Intn(3)
		if k > len(m.values) {
			k = len(m.values)
		}
		vals := make([]string, 0, k)
		for _, i := range s.rng.Perm(len(m.values))[:k] {
			vals = append(vals, m.values[i])
		}
		return query.Predicate{Field: m.field.Name, Op: query.OpIn, Values: vals}
	}
	m := s.g.fields[s.g.quant[s.rng.Intn(len(s.g.quant))]]
	span := m.hi - m.lo
	width := span * (0.05 + 0.45*s.rng.Float64())
	lo := m.lo + s.rng.Float64()*(span-width)
	return query.Predicate{Field: m.field.Name, Op: query.OpRange, Lo: lo, Hi: lo + width}
}

// randomSelection brushes one bin of the viz's first binning dimension.
func (s *genState) randomSelection(spec *VizSpec) query.Predicate {
	b := spec.Bins[0]
	if b.Kind == dataset.Nominal {
		for _, m := range s.g.fields {
			if m.field.Name == b.Field {
				return query.Predicate{
					Field:  b.Field,
					Op:     query.OpIn,
					Values: []string{m.values[s.rng.Intn(len(m.values))]},
				}
			}
		}
	}
	for _, m := range s.g.fields {
		if m.field.Name == b.Field {
			span := m.hi - m.lo
			nBins := int(span / b.Width)
			if nBins < 1 {
				nBins = 1
			}
			idx := int64(s.rng.Intn(nBins))
			lo := b.BinLow(idx)
			return query.Predicate{Field: b.Field, Op: query.OpRange, Lo: lo, Hi: lo + b.Width}
		}
	}
	// Unreachable for specs produced by this generator.
	return query.Predicate{Field: b.Field, Op: query.OpRange, Lo: 0, Hi: 1}
}
