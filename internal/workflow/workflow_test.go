package workflow

import (
	"bytes"
	"strings"
	"testing"

	"idebench/internal/dataset"
	"idebench/internal/query"
)

func spec(name string) *VizSpec {
	return &VizSpec{
		Name:  name,
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
	}
}

func create(name string) Interaction {
	return Interaction{Kind: KindCreateViz, Viz: name, Spec: spec(name)}
}

func TestTypeValid(t *testing.T) {
	for _, typ := range append(append([]Type(nil), AllTypes...), Mixed) {
		if !typ.Valid() {
			t.Errorf("%s should be valid", typ)
		}
	}
	if Type("bogus").Valid() {
		t.Error("bogus type should be invalid")
	}
}

func TestWorkflowValidate(t *testing.T) {
	good := &Workflow{Name: "w", Type: Mixed, Interactions: []Interaction{
		create("a"),
		create("b"),
		{Kind: KindLink, From: "a", To: "b"},
		{Kind: KindSelect, Viz: "a", Predicate: &query.Predicate{
			Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}},
		{Kind: KindFilter, Viz: "b", Predicate: &query.Predicate{
			Field: "dep_delay", Op: query.OpRange, Lo: 0, Hi: 10}},
		{Kind: KindDiscard, Viz: "a"},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid workflow rejected: %v", err)
	}

	bad := []*Workflow{
		{Interactions: []Interaction{{Kind: KindCreateViz, Viz: "a"}}},                                                               // no spec
		{Interactions: []Interaction{create("a"), create("a")}},                                                                      // duplicate
		{Interactions: []Interaction{{Kind: KindFilter, Viz: "ghost"}}},                                                              // unknown viz
		{Interactions: []Interaction{create("a"), {Kind: KindFilter, Viz: "a"}}},                                                     // no predicate
		{Interactions: []Interaction{create("a"), {Kind: KindLink, From: "a", To: "b"}}},                                             // unknown link target
		{Interactions: []Interaction{create("a"), {Kind: KindLink, From: "a", To: "a"}}},                                             // self link
		{Interactions: []Interaction{{Kind: KindDiscard, Viz: "x"}}},                                                                 // discard unknown
		{Interactions: []Interaction{{Kind: "zoom", Viz: "x"}}},                                                                      // unknown kind
		{Interactions: []Interaction{create("a"), {Kind: KindSelect, Viz: "a", Predicate: &query.Predicate{Field: "x", Op: "bad"}}}}, // bad predicate
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workflow %d accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	flows := []*Workflow{{
		Name: "w1", Type: SequentialLinking,
		Interactions: []Interaction{
			create("a"),
			{Kind: KindFilter, Viz: "a", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{"AA", "UA"}}},
		},
	}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "w1" || got[0].Type != SequentialLinking {
		t.Fatalf("round trip lost metadata: %+v", got[0])
	}
	if len(got[0].Interactions) != 2 {
		t.Fatal("interactions lost")
	}
	p := got[0].Interactions[1].Predicate
	if p == nil || p.Op != query.OpIn || len(p.Values) != 2 {
		t.Errorf("predicate mangled: %+v", p)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	// Structurally valid JSON but semantically broken workflow.
	bad := `[{"name":"w","type":"mixed","interactions":[{"kind":"filter","viz":"ghost"}]}]`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid workflow should fail validation")
	}
}

func TestGraphCreateAndQuery(t *testing.T) {
	g := NewGraph()
	eff, err := g.Apply(create("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Queries) != 1 {
		t.Fatalf("create should trigger 1 query, got %d", len(eff.Queries))
	}
	q := eff.Queries[0]
	if q.VizName != "a" || !q.Filter.IsEmpty() {
		t.Errorf("unexpected query: %+v", q)
	}
	if g.NumVizs() != 1 {
		t.Error("viz not registered")
	}
}

func TestGraphFilterAffectsSelfAndDownstream(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	mustApply(t, g, create("b"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "a", To: "b"})

	eff, err := g.Apply(Interaction{Kind: KindFilter, Viz: "a", Predicate: &query.Predicate{
		Field: "dep_delay", Op: query.OpRange, Lo: 0, Hi: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Queries) != 2 {
		t.Fatalf("filter on source should update source+target, got %d queries", len(eff.Queries))
	}
	// The source's own query carries the filter.
	var selfQ *query.Query
	for _, q := range eff.Queries {
		if q.VizName == "a" {
			selfQ = q
		}
	}
	if selfQ == nil || len(selfQ.Filter.Predicates) != 1 {
		t.Error("source query missing its own filter")
	}
}

func TestGraphSelectionPropagatesToTargetsOnly(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("src"))
	mustApply(t, g, create("t1"))
	mustApply(t, g, create("t2"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "src", To: "t1"})
	mustApply(t, g, Interaction{Kind: KindLink, From: "src", To: "t2"})

	sel := &query.Predicate{Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}
	eff, err := g.Apply(Interaction{Kind: KindSelect, Viz: "src", Predicate: sel})
	if err != nil {
		t.Fatal(err)
	}
	// 1:N — one interaction, two concurrent queries.
	if len(eff.Queries) != 2 {
		t.Fatalf("selection should update 2 targets, got %d", len(eff.Queries))
	}
	for _, q := range eff.Queries {
		if q.VizName == "src" {
			t.Error("selection must not re-query the source itself")
		}
		if len(q.Filter.Predicates) != 1 || q.Filter.Predicates[0].Field != "carrier" {
			t.Errorf("target query missing upstream selection: %+v", q.Filter)
		}
	}

	// Re-selecting replaces, not stacks.
	sel2 := &query.Predicate{Field: "carrier", Op: query.OpIn, Values: []string{"UA"}}
	eff2, err := g.Apply(Interaction{Kind: KindSelect, Viz: "src", Predicate: sel2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range eff2.Queries {
		if len(q.Filter.Predicates) != 1 || q.Filter.Predicates[0].Values[0] != "UA" {
			t.Errorf("selection should replace previous one: %+v", q.Filter)
		}
	}
}

func TestGraphSequentialChainPropagation(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	mustApply(t, g, create("b"))
	mustApply(t, g, create("c"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "a", To: "b"})
	mustApply(t, g, Interaction{Kind: KindLink, From: "b", To: "c"})

	sel := &query.Predicate{Field: "carrier", Op: query.OpIn, Values: []string{"DL"}}
	eff, err := g.Apply(Interaction{Kind: KindSelect, Viz: "a", Predicate: sel})
	if err != nil {
		t.Fatal(err)
	}
	// Selection at the chain head updates b and c.
	if len(eff.Queries) != 2 {
		t.Fatalf("chain selection should update 2 vizs, got %d", len(eff.Queries))
	}
	qc, err := g.QueryFor("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(qc.Filter.Predicates) != 1 {
		t.Errorf("transitive selection not applied to chain tail: %+v", qc.Filter)
	}
}

func TestGraphLinkTriggersTargetRefresh(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	mustApply(t, g, create("b"))
	sel := &query.Predicate{Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}
	mustApply(t, g, Interaction{Kind: KindSelect, Viz: "a", Predicate: sel})

	eff, err := g.Apply(Interaction{Kind: KindLink, From: "a", To: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if eff.NewLink == nil || eff.NewLink[0] != "a" {
		t.Error("link effect missing")
	}
	if len(eff.Queries) != 1 || eff.Queries[0].VizName != "b" {
		t.Fatalf("link should refresh target, got %+v", eff.Queries)
	}
	if len(eff.Queries[0].Filter.Predicates) != 1 {
		t.Error("existing selection should apply to newly linked target")
	}
}

func TestGraphDiscardRemovesLinks(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	mustApply(t, g, create("b"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "a", To: "b"})
	eff, err := g.Apply(Interaction{Kind: KindDiscard, Viz: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if eff.Discarded != "b" || len(eff.Queries) != 0 {
		t.Error("discard effect wrong")
	}
	if g.NumVizs() != 1 || len(g.Links()) != 0 {
		t.Error("discard did not clean up links")
	}
}

func TestGraphCycleSafety(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	mustApply(t, g, create("b"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "a", To: "b"})
	mustApply(t, g, Interaction{Kind: KindLink, From: "b", To: "a"})
	sel := &query.Predicate{Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}
	eff, err := g.Apply(Interaction{Kind: KindSelect, Viz: "a", Predicate: sel})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Queries) != 1 {
		t.Errorf("cycle should still terminate with 1 affected viz, got %d", len(eff.Queries))
	}
}

func TestGraphErrors(t *testing.T) {
	g := NewGraph()
	mustApply(t, g, create("a"))
	cases := []Interaction{
		{Kind: KindCreateViz, Viz: "a", Spec: spec("a")}, // duplicate
		{Kind: KindCreateViz, Viz: "x"},                  // nil spec
		{Kind: KindFilter, Viz: "ghost"},                 // unknown viz
		{Kind: KindFilter, Viz: "a"},                     // nil predicate
		{Kind: KindSelect, Viz: "ghost"},                 // unknown viz
		{Kind: KindSelect, Viz: "a"},                     // nil predicate
		{Kind: KindLink, From: "ghost", To: "a"},         // unknown from
		{Kind: KindLink, From: "a", To: "ghost"},         // unknown to
		{Kind: KindDiscard, Viz: "ghost"},                // unknown discard
		{Kind: "zoom"},                                   // unknown kind
	}
	for i, in := range cases {
		if _, err := g.Apply(in); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Duplicate link.
	mustApply(t, g, create("b"))
	mustApply(t, g, Interaction{Kind: KindLink, From: "a", To: "b"})
	if _, err := g.Apply(Interaction{Kind: KindLink, From: "a", To: "b"}); err == nil {
		t.Error("duplicate link should fail")
	}
}

func mustApply(t *testing.T, g *Graph, in Interaction) *Effect {
	t.Helper()
	eff, err := g.Apply(in)
	if err != nil {
		t.Fatalf("apply %+v: %v", in, err)
	}
	return eff
}
