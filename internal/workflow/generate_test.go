package workflow

import (
	"testing"
	"testing/quick"

	"idebench/internal/datagen"
	"idebench/internal/dataset"
)

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	tbl, err := datagen.GenerateSeed(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateAllTypes(t *testing.T) {
	g := testGenerator(t)
	for _, typ := range append(append([]Type(nil), AllTypes...), Mixed) {
		w, err := g.Generate(GenConfig{Type: typ, Interactions: 24, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if len(w.Interactions) != 24 {
			t.Errorf("%s: %d interactions, want 24", typ, len(w.Interactions))
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: generated workflow invalid: %v", typ, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGenerator(t)
	a, err := g.Generate(GenConfig{Type: Mixed, Interactions: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(GenConfig{Type: Mixed, Interactions: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Interactions) != len(b.Interactions) {
		t.Fatal("lengths differ")
	}
	for i := range a.Interactions {
		if a.Interactions[i].Kind != b.Interactions[i].Kind ||
			a.Interactions[i].Viz != b.Interactions[i].Viz {
			t.Fatalf("interaction %d differs", i)
		}
	}
}

func TestGenerateUnknownType(t *testing.T) {
	g := testGenerator(t)
	if _, err := g.Generate(GenConfig{Type: "bogus"}); err == nil {
		t.Error("unknown type should error")
	}
}

func TestGeneratorEmptyTable(t *testing.T) {
	schema := dataset.MustSchema([]dataset.Field{{Name: "x", Kind: dataset.Quantitative}})
	tbl, err := dataset.NewBuilder("t", schema, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(tbl); err == nil {
		t.Error("empty table should error")
	}
}

func TestIndependentHasNoLinks(t *testing.T) {
	g := testGenerator(t)
	w, err := g.Generate(GenConfig{Type: IndependentBrowsing, Interactions: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Interactions {
		if in.Kind == KindLink || in.Kind == KindSelect {
			t.Fatalf("independent browsing produced %s", in.Kind)
		}
	}
}

func TestOneToNShape(t *testing.T) {
	g := testGenerator(t)
	w, err := g.Generate(GenConfig{Type: OneToNLinking, Interactions: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// All links must share the same source (viz_0).
	for _, in := range w.Interactions {
		if in.Kind == KindLink && in.From != "viz_0" {
			t.Errorf("1:N link from %q, want viz_0", in.From)
		}
		if in.Kind == KindSelect && in.Viz != "viz_0" {
			t.Errorf("1:N select on %q, want viz_0", in.Viz)
		}
	}
}

func TestNToOneShape(t *testing.T) {
	g := testGenerator(t)
	w, err := g.Generate(GenConfig{Type: NToOneLinking, Interactions: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range w.Interactions {
		if in.Kind == KindLink && in.To != "viz_0" {
			t.Errorf("N:1 link to %q, want viz_0", in.To)
		}
	}
}

func TestSequentialChainShape(t *testing.T) {
	g := testGenerator(t)
	w, err := g.Generate(GenConfig{Type: SequentialLinking, Interactions: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Each link's source must be the viz created immediately before the
	// target (chain property).
	created := []string{}
	for _, in := range w.Interactions {
		switch in.Kind {
		case KindCreateViz:
			created = append(created, in.Viz)
		case KindLink:
			if len(created) < 2 {
				t.Fatal("link before two creates")
			}
			if in.From != created[len(created)-2] || in.To != created[len(created)-1] {
				t.Errorf("non-chain link %s->%s", in.From, in.To)
			}
		}
	}
}

// Property: every generated workflow replays cleanly through a Graph.
func TestGeneratedWorkflowsReplay(t *testing.T) {
	g := testGenerator(t)
	types := append(append([]Type(nil), AllTypes...), Mixed)
	f := func(seed int64, typPick uint8) bool {
		typ := types[int(typPick)%len(types)]
		w, err := g.Generate(GenConfig{Type: typ, Interactions: 25, Seed: seed})
		if err != nil {
			return false
		}
		graph := NewGraph()
		for _, in := range w.Interactions {
			eff, err := graph.Apply(in)
			if err != nil {
				return false
			}
			for _, q := range eff.Queries {
				if err := q.Validate(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenerateSet(t *testing.T) {
	g := testGenerator(t)
	flows, err := g.GenerateSet(3, 12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 15 { // 4 pure types + mixed, 3 each
		t.Fatalf("generated %d workflows, want 15", len(flows))
	}
	byType := map[Type]int{}
	for _, f := range flows {
		byType[f.Type]++
		if len(f.Interactions) != 12 {
			t.Errorf("workflow %s has %d interactions", f.Name, len(f.Interactions))
		}
	}
	for _, typ := range append(append([]Type(nil), AllTypes...), Mixed) {
		if byType[typ] != 3 {
			t.Errorf("type %s: %d workflows, want 3", typ, byType[typ])
		}
	}
}

func TestGeneratedWorkflowsProduceConcurrentQueries(t *testing.T) {
	g := testGenerator(t)
	w, err := g.Generate(GenConfig{Type: OneToNLinking, Interactions: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	graph := NewGraph()
	maxConcurrent := 0
	for _, in := range w.Interactions {
		eff, err := graph.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(eff.Queries) > maxConcurrent {
			maxConcurrent = len(eff.Queries)
		}
	}
	if maxConcurrent < 2 {
		t.Errorf("1:N workflow never triggered concurrent queries (max %d)", maxConcurrent)
	}
}
