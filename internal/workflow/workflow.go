// Package workflow models the benchmark's unit of work (paper Sec. 4.3):
// sequences of user interactions — creating visualizations, filtering,
// selecting, linking and discarding — together with the visualization
// dependency graph that turns one interaction into the set of concurrent
// queries the database must answer. A Markov-chain generator produces
// workflows of the paper's four types plus the mixed type.
package workflow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"idebench/internal/query"
)

// Type enumerates the workflow types (paper Fig. 3).
type Type string

// The four interaction patterns observed in user studies, plus "mixed".
const (
	IndependentBrowsing Type = "independent"
	SequentialLinking   Type = "sequential"
	OneToNLinking       Type = "1n"
	NToOneLinking       Type = "n1"
	Mixed               Type = "mixed"
)

// AllTypes lists the four pure workflow types (the default configuration
// additionally runs Mixed).
var AllTypes = []Type{IndependentBrowsing, SequentialLinking, OneToNLinking, NToOneLinking}

// Valid reports whether t is a known workflow type.
func (t Type) Valid() bool {
	switch t {
	case IndependentBrowsing, SequentialLinking, OneToNLinking, NToOneLinking, Mixed:
		return true
	}
	return false
}

// InteractionKind enumerates user interactions.
type InteractionKind string

// Interaction kinds (paper Sec. 4.3: "creating a visualization ...,
// filtering/selecting ..., linking visualizations ..., and discarding").
// KindIngest extends the paper's repertoire for ingest-aware workloads: an
// append-only batch of new rows arrives between user interactions, and
// standing visualizations must keep answering while it is absorbed.
const (
	KindCreateViz InteractionKind = "create"
	KindFilter    InteractionKind = "filter"
	KindSelect    InteractionKind = "select"
	KindLink      InteractionKind = "link"
	KindDiscard   InteractionKind = "discard"
	KindIngest    InteractionKind = "ingest"
)

// VizSpec describes a visualization: its data source, binning and
// aggregates. It is the unit the benchmark translates to queries.
type VizSpec struct {
	Name  string            `json:"name"`
	Table string            `json:"table"`
	Bins  []query.Binning   `json:"bins"`
	Aggs  []query.Aggregate `json:"aggs"`
}

// Interaction is one step of a workflow.
type Interaction struct {
	Kind InteractionKind `json:"kind"`
	// Viz is the target visualization (create/filter/select/discard).
	Viz string `json:"viz,omitempty"`
	// Spec is the visualization definition (create only).
	Spec *VizSpec `json:"spec,omitempty"`
	// Predicate carries the filter or selection predicate.
	Predicate *query.Predicate `json:"predicate,omitempty"`
	// From/To name the link endpoints (link only).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Rows is the batch size of an ingest event (ingest only). The rows
	// themselves are drawn at replay time from the run's deterministic
	// batch source, so workflow documents stay compact.
	Rows int `json:"rows,omitempty"`
}

// Workflow is a named sequence of interactions.
type Workflow struct {
	Name         string        `json:"name"`
	Type         Type          `json:"type"`
	Interactions []Interaction `json:"interactions"`
}

// Validate checks structural soundness: vizs are created before use, links
// reference existing vizs, specs are valid queries.
func (w *Workflow) Validate() error {
	live := map[string]bool{}
	for i, in := range w.Interactions {
		switch in.Kind {
		case KindCreateViz:
			if in.Spec == nil || in.Viz == "" {
				return fmt.Errorf("workflow %s[%d]: create without spec/name", w.Name, i)
			}
			if live[in.Viz] {
				return fmt.Errorf("workflow %s[%d]: viz %q already exists", w.Name, i, in.Viz)
			}
			q := in.Spec.Query(query.Filter{})
			if err := q.Validate(); err != nil {
				return fmt.Errorf("workflow %s[%d]: %w", w.Name, i, err)
			}
			live[in.Viz] = true
		case KindFilter, KindSelect:
			if !live[in.Viz] {
				return fmt.Errorf("workflow %s[%d]: %s on unknown viz %q", w.Name, i, in.Kind, in.Viz)
			}
			if in.Predicate == nil {
				return fmt.Errorf("workflow %s[%d]: %s without predicate", w.Name, i, in.Kind)
			}
			if err := in.Predicate.Validate(); err != nil {
				return fmt.Errorf("workflow %s[%d]: %w", w.Name, i, err)
			}
		case KindLink:
			if !live[in.From] || !live[in.To] {
				return fmt.Errorf("workflow %s[%d]: link between unknown vizs %q->%q", w.Name, i, in.From, in.To)
			}
			if in.From == in.To {
				return fmt.Errorf("workflow %s[%d]: self-link on %q", w.Name, i, in.From)
			}
		case KindDiscard:
			if !live[in.Viz] {
				return fmt.Errorf("workflow %s[%d]: discard of unknown viz %q", w.Name, i, in.Viz)
			}
			delete(live, in.Viz)
		case KindIngest:
			if in.Rows <= 0 {
				return fmt.Errorf("workflow %s[%d]: ingest with %d rows", w.Name, i, in.Rows)
			}
		default:
			return fmt.Errorf("workflow %s[%d]: unknown interaction kind %q", w.Name, i, in.Kind)
		}
	}
	return nil
}

// Query materializes the executable query for this viz under an effective
// filter.
func (s *VizSpec) Query(filter query.Filter) *query.Query {
	return &query.Query{
		VizName: s.Name,
		Table:   s.Table,
		Bins:    append([]query.Binning(nil), s.Bins...),
		Aggs:    append([]query.Aggregate(nil), s.Aggs...),
		Filter:  filter,
	}
}

// WriteJSON streams workflows as indented JSON.
func WriteJSON(w io.Writer, flows []*Workflow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flows)
}

// ReadJSON loads workflows written by WriteJSON and validates each.
func ReadJSON(r io.Reader) ([]*Workflow, error) {
	var flows []*Workflow
	if err := json.NewDecoder(r).Decode(&flows); err != nil {
		return nil, fmt.Errorf("workflow: decode: %w", err)
	}
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	return flows, nil
}

// SaveFile writes workflows to a JSON file.
func SaveFile(path string, flows []*Workflow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, flows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads workflows from a JSON file.
func LoadFile(path string) ([]*Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
