package workflow

import (
	"strings"
	"testing"

	"idebench/internal/query"
)

func describeFixture() *Workflow {
	return &Workflow{
		Name: "demo", Type: OneToNLinking,
		Interactions: []Interaction{
			create("src"),
			create("dst"),
			{Kind: KindLink, From: "src", To: "dst"},
			{Kind: KindFilter, Viz: "src", Predicate: &query.Predicate{
				Field: "dep_delay", Op: query.OpRange, Lo: 0, Hi: 60}},
			{Kind: KindSelect, Viz: "src", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}},
			{Kind: KindDiscard, Viz: "dst"},
		},
	}
}

func TestDescribe(t *testing.T) {
	out, err := Describe(describeFixture())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`workflow "demo"`,
		"create src",
		"link src --> dst",
		"filter src where",
		"select on src",
		"discard dst",
		"SELECT",   // triggered queries rendered as SQL
		"-> [dst]", // the link refresh targets dst
		"live visualizations: src",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe output missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeInvalidWorkflow(t *testing.T) {
	w := &Workflow{Name: "bad", Interactions: []Interaction{
		{Kind: KindFilter, Viz: "ghost"},
	}}
	if _, err := Describe(w); err == nil {
		t.Error("invalid workflow should fail to describe")
	}
	if _, err := DOT(w); err == nil {
		t.Error("invalid workflow should fail to render as DOT")
	}
}

func TestDOT(t *testing.T) {
	w := &Workflow{
		Name: "g", Type: OneToNLinking,
		Interactions: []Interaction{
			create("a"),
			create("b"),
			{Kind: KindLink, From: "a", To: "b"},
		},
	}
	out, err := DOT(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`digraph "g"`, `"a" -> "b";`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeInteractionUnknownKind(t *testing.T) {
	if got := describeInteraction(Interaction{Kind: "zoom"}); !strings.Contains(got, "unknown") {
		t.Errorf("unknown kind rendering: %q", got)
	}
}
