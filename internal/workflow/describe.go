package workflow

import (
	"fmt"
	"strings"
)

// Describe renders a workflow as human-readable text: the interaction
// sequence with the queries each step triggers, and the final link graph.
// It is the non-interactive equivalent of the paper's workflow viewer
// ("Once generated, they can be inspected with an interactive viewer").
func Describe(w *Workflow) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workflow %q (type %s, %d interactions)\n", w.Name, w.Type, len(w.Interactions))
	g := NewGraph()
	for i, in := range w.Interactions {
		eff, err := g.Apply(in)
		if err != nil {
			return "", fmt.Errorf("workflow: describe %s[%d]: %w", w.Name, i, err)
		}
		fmt.Fprintf(&sb, "%3d. %s\n", i, describeInteraction(in))
		for _, q := range eff.Queries {
			fmt.Fprintf(&sb, "       -> [%s] %s\n", q.VizName, q.ToSQL())
		}
	}
	links := g.Links()
	if len(links) > 0 {
		sb.WriteString("final link graph:\n")
		for _, l := range links {
			fmt.Fprintf(&sb, "  %s --> %s\n", l[0], l[1])
		}
	}
	fmt.Fprintf(&sb, "live visualizations: %s\n", strings.Join(g.VizNames(), ", "))
	return sb.String(), nil
}

func describeInteraction(in Interaction) string {
	switch in.Kind {
	case KindCreateViz:
		bins := make([]string, len(in.Spec.Bins))
		for i, b := range in.Spec.Bins {
			bins[i] = b.Field
		}
		aggs := make([]string, len(in.Spec.Aggs))
		for i, a := range in.Spec.Aggs {
			aggs[i] = a.String()
		}
		return fmt.Sprintf("create %s: %s by %s", in.Viz,
			strings.Join(aggs, ", "), strings.Join(bins, " × "))
	case KindFilter:
		return fmt.Sprintf("filter %s where %s", in.Viz, in.Predicate.ToSQL())
	case KindSelect:
		return fmt.Sprintf("select on %s: %s", in.Viz, in.Predicate.ToSQL())
	case KindLink:
		return fmt.Sprintf("link %s --> %s", in.From, in.To)
	case KindDiscard:
		return fmt.Sprintf("discard %s", in.Viz)
	case KindIngest:
		return fmt.Sprintf("ingest %d rows", in.Rows)
	default:
		return fmt.Sprintf("unknown interaction %q", in.Kind)
	}
}

// DOT renders the workflow's final visualization graph in Graphviz DOT
// format for external tooling.
func DOT(w *Workflow) (string, error) {
	g := NewGraph()
	for i, in := range w.Interactions {
		if _, err := g.Apply(in); err != nil {
			return "", fmt.Errorf("workflow: dot %s[%d]: %w", w.Name, i, err)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", w.Name)
	for _, v := range g.VizNames() {
		fmt.Fprintf(&sb, "  %q;\n", v)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&sb, "  %q -> %q;\n", l[0], l[1])
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
