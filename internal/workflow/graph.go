package workflow

import (
	"fmt"
	"sort"

	"idebench/internal/query"
)

// Graph is the live visualization dependency graph the benchmark driver
// maintains while replaying a workflow (paper Sec. 2.2: dashboards are
// "dependency graphs of visualization and filter objects; changing
// properties of either object may require all dependent visualizations to
// update, which on the database-level leads to multiple concurrent
// queries").
type Graph struct {
	vizs map[string]*vizState
}

type vizState struct {
	spec VizSpec
	// ownFilter accumulates explicit Filter interactions on this viz.
	ownFilter query.Filter
	// selection is the current brush on this viz; it propagates to linked
	// targets, not to the viz itself.
	selection *query.Predicate
	// out lists target viz names (this viz is their source).
	out []string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{vizs: make(map[string]*vizState)}
}

// NumVizs returns the number of live visualizations.
func (g *Graph) NumVizs() int { return len(g.vizs) }

// VizNames returns the live viz names, sorted for determinism.
func (g *Graph) VizNames() []string {
	names := make([]string, 0, len(g.vizs))
	for n := range g.vizs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Links returns all (from, to) link pairs, deterministically ordered.
func (g *Graph) Links() [][2]string {
	var out [][2]string
	for _, from := range g.VizNames() {
		for _, to := range g.vizs[from].out {
			out = append(out, [2]string{from, to})
		}
	}
	return out
}

// Effect describes what one interaction requires from the engine: the
// queries to run concurrently, plus link/discard/ingest notifications.
type Effect struct {
	// Queries to start simultaneously (one per visualization to update).
	Queries []*query.Query
	// NewLink is set for link interactions (engine hint).
	NewLink *[2]string
	// Discarded is set for discard interactions.
	Discarded string
	// IngestRows is set for ingest interactions: the batch size to draw
	// from the replay's batch source and append before continuing.
	IngestRows int
}

// Apply folds one interaction into the graph and returns its effect.
func (g *Graph) Apply(in Interaction) (*Effect, error) {
	switch in.Kind {
	case KindCreateViz:
		if in.Spec == nil {
			return nil, fmt.Errorf("workflow: create without spec")
		}
		if _, exists := g.vizs[in.Viz]; exists {
			return nil, fmt.Errorf("workflow: viz %q already exists", in.Viz)
		}
		g.vizs[in.Viz] = &vizState{spec: *in.Spec}
		return &Effect{Queries: []*query.Query{g.queryFor(in.Viz)}}, nil

	case KindFilter:
		v, ok := g.vizs[in.Viz]
		if !ok {
			return nil, fmt.Errorf("workflow: filter on unknown viz %q", in.Viz)
		}
		if in.Predicate == nil {
			return nil, fmt.Errorf("workflow: filter without predicate")
		}
		v.ownFilter = v.ownFilter.And(*in.Predicate)
		// The filtered viz updates, and so do all transitive targets
		// (their effective filters include this viz's data subset only via
		// selections; a pure filter still updates the viz itself and
		// downstream vizs re-query because their source changed).
		affected := g.downstream(in.Viz, true)
		return &Effect{Queries: g.queriesFor(affected)}, nil

	case KindSelect:
		v, ok := g.vizs[in.Viz]
		if !ok {
			return nil, fmt.Errorf("workflow: select on unknown viz %q", in.Viz)
		}
		if in.Predicate == nil {
			return nil, fmt.Errorf("workflow: select without predicate")
		}
		p := *in.Predicate
		v.selection = &p
		// Selection updates linked targets only.
		affected := g.downstream(in.Viz, false)
		return &Effect{Queries: g.queriesFor(affected)}, nil

	case KindLink:
		from, ok := g.vizs[in.From]
		if !ok {
			return nil, fmt.Errorf("workflow: link from unknown viz %q", in.From)
		}
		if _, ok := g.vizs[in.To]; !ok {
			return nil, fmt.Errorf("workflow: link to unknown viz %q", in.To)
		}
		for _, t := range from.out {
			if t == in.To {
				return nil, fmt.Errorf("workflow: duplicate link %q->%q", in.From, in.To)
			}
		}
		from.out = append(from.out, in.To)
		// The target (and its own targets) refresh under the new lineage.
		affected := g.downstream(in.To, true)
		return &Effect{
			Queries: g.queriesFor(affected),
			NewLink: &[2]string{in.From, in.To},
		}, nil

	case KindDiscard:
		if _, ok := g.vizs[in.Viz]; !ok {
			return nil, fmt.Errorf("workflow: discard of unknown viz %q", in.Viz)
		}
		delete(g.vizs, in.Viz)
		for _, v := range g.vizs {
			out := v.out[:0]
			for _, t := range v.out {
				if t != in.Viz {
					out = append(out, t)
				}
			}
			v.out = out
		}
		return &Effect{Discarded: in.Viz}, nil

	case KindIngest:
		if in.Rows <= 0 {
			return nil, fmt.Errorf("workflow: ingest with %d rows", in.Rows)
		}
		// Ingestion changes the data under every standing visualization but
		// triggers no queries by itself: live engines absorb the batch into
		// their standing states, and the next interaction's queries (or the
		// driver's staleness metric) observe how fresh the answers are.
		return &Effect{IngestRows: in.Rows}, nil

	default:
		return nil, fmt.Errorf("workflow: unknown interaction kind %q", in.Kind)
	}
}

// downstream collects the names reachable from start via links, optionally
// including start itself, in deterministic BFS order.
func (g *Graph) downstream(start string, includeStart bool) []string {
	seen := map[string]bool{start: true}
	order := []string{}
	if includeStart {
		order = append(order, start)
	}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		v, ok := g.vizs[cur]
		if !ok {
			continue
		}
		targets := append([]string(nil), v.out...)
		sort.Strings(targets)
		for _, t := range targets {
			if seen[t] {
				continue
			}
			seen[t] = true
			order = append(order, t)
			queue = append(queue, t)
		}
	}
	return order
}

// upstreamSelections collects the selection predicates of all transitive
// sources of viz (cycle-safe).
func (g *Graph) upstreamSelections(viz string) []query.Predicate {
	// Build reverse edges on the fly (graphs are tiny).
	var preds []query.Predicate
	seen := map[string]bool{viz: true}
	queue := []string{viz}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, srcName := range g.VizNames() {
			src := g.vizs[srcName]
			for _, t := range src.out {
				if t != cur || seen[srcName] {
					continue
				}
				seen[srcName] = true
				if src.selection != nil {
					preds = append(preds, *src.selection)
				}
				queue = append(queue, srcName)
			}
		}
	}
	return preds
}

// queryFor materializes viz's query under its effective filter: its own
// filter conjoined with every upstream selection.
func (g *Graph) queryFor(viz string) *query.Query {
	v := g.vizs[viz]
	f := v.ownFilter
	for _, p := range g.upstreamSelections(viz) {
		f = f.And(p)
	}
	return v.spec.Query(f)
}

// queriesFor materializes queries for several vizs.
func (g *Graph) queriesFor(names []string) []*query.Query {
	qs := make([]*query.Query, 0, len(names))
	for _, n := range names {
		qs = append(qs, g.queryFor(n))
	}
	return qs
}

// QueryFor exposes the effective query of a live viz (used by the driver
// for ground-truth bookkeeping and by tests).
func (g *Graph) QueryFor(viz string) (*query.Query, error) {
	if _, ok := g.vizs[viz]; !ok {
		return nil, fmt.Errorf("workflow: unknown viz %q", viz)
	}
	return g.queryFor(viz), nil
}
