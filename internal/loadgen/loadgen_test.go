package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"idebench/internal/core"
	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/progressive"
)

func testDB(t *testing.T) *dataset.Database {
	t.Helper()
	db, err := core.BuildData(20_000, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPoissonMeanGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Poisson{Rate: 200}
	var sum time.Duration
	const n = 20_000
	for i := int64(0); i < n; i++ {
		sum += s.Gap(rng, i, 0)
	}
	mean := float64(sum) / n / float64(time.Second)
	if math.Abs(mean-1.0/200) > 0.0005 {
		t.Fatalf("mean gap %.6fs, want ~%.6fs", mean, 1.0/200)
	}
}

func TestBurstySwitchesRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Bursty{BaseRate: 10, BurstRate: 1000, Period: 100 * time.Millisecond, BurstLen: 20 * time.Millisecond}
	avg := func(elapsed time.Duration) float64 {
		var sum time.Duration
		const n = 5000
		for i := int64(0); i < n; i++ {
			sum += s.Gap(rng, i, elapsed)
		}
		return float64(sum) / n / float64(time.Second)
	}
	inBurst := avg(5 * time.Millisecond)   // inside the burst window
	offBurst := avg(50 * time.Millisecond) // outside
	if inBurst >= offBurst {
		t.Fatalf("burst gap %.6fs not smaller than base gap %.6fs", inBurst, offBurst)
	}
	if math.Abs(inBurst-1.0/1000) > 0.0005 || math.Abs(offBurst-1.0/10) > 0.02 {
		t.Fatalf("gaps %.6f/%.6f, want ~%.6f/~%.6f", inBurst, offBurst, 1.0/1000, 1.0/10)
	}
}

func TestRampRate(t *testing.T) {
	r := Ramp{From: 100, To: 500, Over: time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{500 * time.Millisecond, 300},
		{time.Second, 500},
		{2 * time.Second, 500}, // holds at To past the ramp
	}
	for _, c := range cases {
		if got := r.RateAt(c.at); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("RateAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"uniform", "hotkey", "recency", "ingest-mix"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("workload %q not registered (have %v)", want, names)
		}
	}
	if _, err := New("no-such-workload", nil, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsSynthesizeValidOps(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(3))
	for _, name := range []string{"uniform", "hotkey", "recency"} {
		wl, err := New(name, db, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for seq := int64(0); seq < 200; seq++ {
			op := wl.Next(rng, seq)
			if op.Query == nil || op.Batch != nil {
				t.Fatalf("%s seq %d: want a pure query op", name, seq)
			}
			q := op.Query
			if q.Table != db.Fact.Name || len(q.Bins) != 1 || len(q.Aggs) != 1 {
				t.Fatalf("%s seq %d: malformed query %+v", name, seq, q)
			}
			if len(q.Filter.Predicates) != 1 {
				t.Fatalf("%s seq %d: want exactly one predicate", name, seq)
			}
		}
	}
}

func TestIngestMixProducesBatches(t *testing.T) {
	db := testDB(t)
	wl, err := New("ingest-mix", db, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	batches := 0
	const n = 2000
	for seq := int64(0); seq < n; seq++ {
		op := wl.Next(rng, seq)
		if op.Batch != nil {
			batches++
			if op.Batch.NumRows() == 0 {
				t.Fatalf("seq %d: empty ingest batch", seq)
			}
		}
	}
	// Target mix is 10%; allow generous slack around the binomial draw.
	if batches < n/20 || batches > n/5 {
		t.Fatalf("ingest ops %d of %d, want ~10%%", batches, n)
	}
}

// TestRunInProcessSmoke drives the open loop against an in-process
// progressive engine: a low offered rate must complete everything it
// offers with no errors, rejections, or drops.
func TestRunInProcessSmoke(t *testing.T) {
	db := testDB(t)
	eng := progressive.New(progressive.Config{})
	if err := eng.Prepare(db, engine.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	wl, err := New("uniform", db, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(eng, wl, Poisson{Rate: 100}, Config{
		Sessions: 2,
		Duration: 500 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered == 0 || st.Started != st.Offered {
		t.Fatalf("offered %d started %d, want equal and > 0", st.Offered, st.Started)
	}
	if st.Completed != st.Started {
		t.Fatalf("completed %d of %d started", st.Completed, st.Started)
	}
	if st.Errors != 0 || st.Rejected != 0 || st.Dropped != 0 {
		t.Fatalf("errors=%d rejected=%d dropped=%d, want all 0", st.Errors, st.Rejected, st.Dropped)
	}
	if st.Done.Count != int(st.Completed) {
		t.Fatalf("done summary count %d, want %d", st.Done.Count, st.Completed)
	}
	if st.OfferedRate <= 0 {
		t.Fatalf("offered rate %v, want > 0", st.OfferedRate)
	}
}
