// Package loadgen is the open-loop load generator of the overload
// experiments: arrivals fire on a Schedule (Poisson, bursty, ramp)
// regardless of how long earlier operations take, so offered load is a
// property of the generator, never of the server's response times. This is
// the opposite of the driver's closed-loop model (K analysts with think
// time, each waiting for their own queries): a closed loop self-throttles
// under overload and hides the latency cliff, an open loop walks straight
// into it — which is the point. Workloads (hot-key bias, recency bias,
// read/ingest mixes) come from a pluggable registry.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"idebench/internal/engine"
	"idebench/internal/ingest"
	"idebench/internal/metrics"
)

// Config tunes one open-loop run.
type Config struct {
	// Sessions is the connection/session pool size the arrivals are spread
	// over round-robin (default 8).
	Sessions int
	// Duration is the offered-load window (default 2s). Operations in
	// flight when it closes still run to completion.
	Duration time.Duration
	// Deadline is the per-query interactivity deadline: a query with no
	// usable snapshot by then counts as violated. It is also sent to the
	// server as the shedding hint on sessions that support deadline hints
	// (server.RemoteSession). Default 12ms — the benchmark's default TR
	// at SizeS scale.
	Deadline time.Duration
	// MaxOutstanding caps concurrently outstanding operations client-side
	// (default 4096); arrivals past the cap are dropped and counted, so a
	// stalled server cannot accumulate unbounded goroutines in the
	// generator itself.
	MaxOutstanding int
	// Seed drives the schedule's and workload's randomness.
	Seed int64
	// Ingest applies an ingest op's batch. Unset, the runner uses the
	// engine's own Ingest method when it has one (server.Remote does);
	// otherwise ingest ops count as errors.
	Ingest func(b *ingest.Batch) error
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Deadline <= 0 {
		c.Deadline = 12 * time.Millisecond
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is the outcome of one open-loop run. Latencies are milliseconds.
type Stats struct {
	Workload string `json:"workload"`
	Schedule string `json:"schedule"`
	// Offered counts scheduled arrivals; Started those actually issued
	// (Offered - Dropped); Completed the queries that delivered a final.
	Offered   int64 `json:"offered"`
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	// Rejected counts explicit server admission rejections; Dropped the
	// client-side MaxOutstanding drops; Errors everything else that failed.
	Rejected int64 `json:"rejected"`
	Dropped  int64 `json:"dropped"`
	Errors   int64 `json:"errors"`
	// Violations counts admitted queries with no usable snapshot inside
	// Deadline; Shed those whose final was cut short by server-side
	// deadline shedding.
	Violations int64 `json:"violations"`
	Shed       int64 `json:"shed"`
	// IngestOps counts applied ingest operations.
	IngestOps int64 `json:"ingest_ops"`
	// TTFS summarizes time-to-first-snapshot of admitted queries; Done
	// summarizes their time-to-final.
	TTFS metrics.LatencySummary `json:"ttfs"`
	Done metrics.LatencySummary `json:"done"`
	// Elapsed is the wall-clock of the whole run (offer window + drain of
	// in-flight operations).
	Elapsed time.Duration `json:"elapsed_ns"`
	// OfferedRate/CompletedRate are arrivals and completions per second
	// over the offer window.
	OfferedRate   float64 `json:"offered_rate"`
	CompletedRate float64 `json:"completed_rate"`
}

// ViolationPct returns violated admitted queries as a percentage.
func (s *Stats) ViolationPct() float64 {
	admitted := s.Completed
	if admitted == 0 {
		return 0
	}
	return 100 * float64(s.Violations) / float64(admitted)
}

// RejectedPct returns rejections as a percentage of started operations.
func (s *Stats) RejectedPct() float64 {
	if s.Started == 0 {
		return 0
	}
	return 100 * float64(s.Rejected) / float64(s.Started)
}

// deadliner is the optional session capability for the server's
// deadline-aware shedding hint.
type deadliner interface {
	SetQueryDeadline(d time.Duration)
}

// rejecter/shedder are the optional handle capabilities the remote client
// exposes; in-process handles have neither (nothing rejects or sheds them).
type rejecter interface {
	Rejected() (bool, time.Duration)
}
type shedder interface {
	Shed() bool
}

// collector aggregates outcomes from the executor goroutines.
type collector struct {
	mu         sync.Mutex
	ttfsMs     []float64
	doneMs     []float64
	completed  int64
	rejected   int64
	errors     int64
	violations int64
	shed       int64
	ingestOps  int64
}

// Run offers wl's operations at sched's arrival times against eng for
// cfg.Duration, then waits for everything in flight and returns the stats.
// eng is typically a server.Remote (the open loop drives the full network
// path) but any engine.Engine works.
func Run(eng engine.Engine, wl Workload, sched Schedule, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	sessions := make([]engine.Session, cfg.Sessions)
	for i := range sessions {
		sessions[i] = eng.OpenSession()
		if d, ok := sessions[i].(deadliner); ok {
			d.SetQueryDeadline(cfg.Deadline)
		}
		defer sessions[i].Close()
	}
	applyIngest := cfg.Ingest
	if applyIngest == nil {
		if ig, ok := eng.(interface{ Ingest(b *ingest.Batch) error }); ok {
			applyIngest = ig.Ingest
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	col := &collector{}
	st := &Stats{Workload: wl.Name(), Schedule: sched.Name()}
	// The hard timeout is the generator's own backstop: with server-side
	// shedding at a couple of deadlines, nothing honest runs this long.
	hard := 50 * cfg.Deadline
	if hard < 2*time.Second {
		hard = 2 * time.Second
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.MaxOutstanding)
	start := time.Now()
	next := start
	for {
		elapsed := time.Since(start)
		if elapsed >= cfg.Duration {
			break
		}
		// Absolute arrival times: a slow dispatch iteration shortens the
		// next sleep instead of stretching the schedule (open loop).
		gap := sched.Gap(rng, st.Offered, elapsed)
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		op := wl.Next(rng, st.Offered)
		st.Offered++
		select {
		case sem <- struct{}{}:
		default:
			st.Dropped++
			continue
		}
		st.Started++
		sess := sessions[int(st.Started)%len(sessions)]
		wg.Add(1)
		go func(op Op, sess engine.Session) {
			defer wg.Done()
			defer func() { <-sem }()
			execute(op, sess, applyIngest, cfg.Deadline, hard, col)
		}(op, sess)
	}
	offerWindow := time.Since(start)
	wg.Wait()
	st.Elapsed = time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	st.Completed = col.completed
	st.Rejected = col.rejected
	st.Errors = col.errors
	st.Violations = col.violations
	st.Shed = col.shed
	st.IngestOps = col.ingestOps
	st.TTFS = metrics.SummarizeLatencies(col.ttfsMs)
	st.Done = metrics.SummarizeLatencies(col.doneMs)
	secs := offerWindow.Seconds()
	if secs > 0 {
		st.OfferedRate = float64(st.Offered) / secs
		st.CompletedRate = float64(st.Completed) / secs
	}
	return st, nil
}

// execute runs one operation to completion and records its outcome.
func execute(op Op, sess engine.Session, applyIngest func(*ingest.Batch) error, deadline, hard time.Duration, col *collector) {
	if op.Batch != nil {
		err := fmt.Errorf("loadgen: engine cannot ingest")
		if applyIngest != nil {
			err = applyIngest(op.Batch)
		}
		col.mu.Lock()
		if err != nil {
			col.errors++
		} else {
			col.ingestOps++
		}
		col.mu.Unlock()
		return
	}

	t0 := time.Now()
	h, err := sess.StartQuery(op.Query)
	if err != nil {
		col.mu.Lock()
		col.errors++
		col.mu.Unlock()
		return
	}
	// Poll for the first usable snapshot at ~deadline/20 resolution, then
	// ride until the final lands (server-side shedding bounds how long that
	// can take; the hard timeout is the local backstop).
	poll := deadline / 20
	if poll < 100*time.Microsecond {
		poll = 100 * time.Microsecond
	}
	ttfs := time.Duration(-1)
	hardT := t0.Add(hard)
	done := false
	for !done {
		select {
		case <-h.Done():
			done = true
		default:
		}
		if ttfs < 0 && h.Snapshot() != nil {
			ttfs = time.Since(t0)
		}
		if done {
			break
		}
		if time.Now().After(hardT) {
			h.Cancel()
			select {
			case <-h.Done():
			case <-time.After(5 * time.Second):
			}
			break
		}
		time.Sleep(poll)
	}
	if ttfs < 0 && h.Snapshot() != nil {
		ttfs = time.Since(t0)
	}
	doneLat := time.Since(t0)

	if r, ok := h.(rejecter); ok {
		if rej, _ := r.Rejected(); rej {
			col.mu.Lock()
			col.rejected++
			col.mu.Unlock()
			return
		}
	}
	shed := false
	if sh, ok := h.(shedder); ok {
		shed = sh.Shed()
	}
	violated := ttfs < 0 || ttfs > deadline
	ttfsMs := math.NaN()
	if ttfs >= 0 {
		ttfsMs = float64(ttfs) / float64(time.Millisecond)
	}
	col.mu.Lock()
	col.completed++
	if shed {
		col.shed++
	}
	if violated {
		col.violations++
	}
	col.ttfsMs = append(col.ttfsMs, ttfsMs)
	col.doneMs = append(col.doneMs, float64(doneLat)/float64(time.Millisecond))
	col.mu.Unlock()
}
