package loadgen

import (
	"math/rand"
	"time"
)

// Schedule produces arrival times for the open-loop generator: Gap returns
// the interval between arrival i-1 and arrival i. The runner sleeps the gap
// and fires regardless of whether earlier operations completed — offered
// load is a property of the schedule, never of the server's response times
// (no think-time coupling, no coordinated omission).
type Schedule interface {
	// Name identifies the schedule in reports.
	Name() string
	// Gap returns the wait before arrival i (counting from 0), given the
	// elapsed time since the run started.
	Gap(rng *rand.Rand, i int64, elapsed time.Duration) time.Duration
}

// expGap draws an exponential inter-arrival time for a Poisson process at
// rate arrivals/second.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Second // degenerate: one lonely arrival per second
	}
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// Poisson is a memoryless open-loop schedule at a constant mean rate — the
// standard model for independent analysts arriving at a shared server.
type Poisson struct {
	Rate float64 // mean arrivals per second
}

func (p Poisson) Name() string { return "poisson" }

func (p Poisson) Gap(rng *rand.Rand, _ int64, _ time.Duration) time.Duration {
	return expGap(rng, p.Rate)
}

// Bursty is an on/off schedule: Poisson at BaseRate, except during a burst
// window of BurstLen at the start of every Period, when arrivals come at
// BurstRate. Models synchronized dashboards refreshing together.
type Bursty struct {
	BaseRate  float64       // arrivals/second outside bursts
	BurstRate float64       // arrivals/second inside bursts
	Period    time.Duration // burst cadence
	BurstLen  time.Duration // burst duration (must be < Period)
}

func (b Bursty) Name() string { return "bursty" }

func (b Bursty) Gap(rng *rand.Rand, _ int64, elapsed time.Duration) time.Duration {
	rate := b.BaseRate
	if b.Period > 0 && elapsed%b.Period < b.BurstLen {
		rate = b.BurstRate
	}
	return expGap(rng, rate)
}

// Ramp sweeps the Poisson rate linearly From→To over the Over window (then
// holds at To). The overload experiments use it to walk the offered load
// past the server's shedding knee within one run.
type Ramp struct {
	From, To float64       // arrivals/second at start and end
	Over     time.Duration // ramp duration
}

func (r Ramp) Name() string { return "ramp" }

// RateAt returns the instantaneous target rate at the given elapsed time.
func (r Ramp) RateAt(elapsed time.Duration) float64 {
	if r.Over <= 0 || elapsed >= r.Over {
		return r.To
	}
	frac := float64(elapsed) / float64(r.Over)
	return r.From + (r.To-r.From)*frac
}

func (r Ramp) Gap(rng *rand.Rand, _ int64, elapsed time.Duration) time.Duration {
	return expGap(rng, r.RateAt(elapsed))
}
