package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"idebench/internal/dataset"
	"idebench/internal/ingest"
	"idebench/internal/query"
)

// Op is one offered unit of work: exactly one of Query or Batch is set. A
// query op opens a progressive query on a pooled session; an ingest op
// ships an append-only batch to the engine.
type Op struct {
	Query *query.Query
	Batch *ingest.Batch
}

// Workload synthesizes the operation stream one access pattern at a time.
// Next is called from the runner's single dispatcher goroutine (arrivals
// are generated in schedule order, then executed concurrently), so
// implementations need no internal locking for per-call state.
type Workload interface {
	// Name identifies the workload in reports and the registry.
	Name() string
	// Next returns the seq-th operation (seq counts from 0).
	Next(rng *rand.Rand, seq int64) Op
}

// Factory builds a workload against a concrete database; seed drives all
// workload-internal randomness not covered by the runner's rng.
type Factory func(db *dataset.Database, seed int64) (Workload, error)

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register adds a named workload to the registry; later registrations of
// the same name win (callers can override built-ins).
func Register(name string, f Factory) {
	regMu.Lock()
	registry[name] = f
	regMu.Unlock()
}

// New instantiates the named workload against db.
func New(name string, db *dataset.Database, seed int64) (Workload, error) {
	regMu.Lock()
	f := registry[name]
	regMu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("loadgen: unknown workload %q (have %v)", name, Names())
	}
	return f(db, seed)
}

// Names lists the registered workload names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register("uniform", func(db *dataset.Database, seed int64) (Workload, error) {
		return newTableWorkload(db, "uniform")
	})
	Register("hotkey", func(db *dataset.Database, seed int64) (Workload, error) {
		return newTableWorkload(db, "hotkey")
	})
	Register("recency", func(db *dataset.Database, seed int64) (Workload, error) {
		return newTableWorkload(db, "recency")
	})
	// ingest-mix: 90% hotkey reads, 10% ingest batches of 500 rows — the
	// read side must stay interactive while appends land.
	Register("ingest-mix", func(db *dataset.Database, seed int64) (Workload, error) {
		base, err := newTableWorkload(db, "hotkey")
		if err != nil {
			return nil, err
		}
		src, err := ingest.NewSource(2000, seed+23)
		if err != nil {
			return nil, err
		}
		return &mixWorkload{name: "ingest-mix", base: base, src: src, ingestP: 0.10, batchRows: 500}, nil
	})
}

// fieldInfo summarizes one fact-table attribute for query synthesis.
type fieldInfo struct {
	field  dataset.Field
	lo, hi float64  // quantitative domain
	values []string // nominal domain, in dictionary (frequency) order
}

// tableWorkload synthesizes single-viz aggregate queries over the fact
// table under one of three access patterns:
//
//   - uniform: filter values drawn uniformly from the domain — every query
//     signature is roughly equally likely, defeating the reuse cache.
//   - hotkey: nominal filter values drawn Zipf-distributed over the
//     dictionary, so a few hot keys dominate — the favorable case for
//     signature-keyed state reuse and speculation.
//   - recency: range filters biased to the top of a quantitative domain
//     (the "new data" end under append-only ingestion), with
//     exponentially-distributed lookback windows.
type tableWorkload struct {
	name   string
	table  string
	fields []fieldInfo
	nom    []int // indices of nominal fields
	quant  []int // indices of quantitative fields
	zipf   *rand.Zipf
}

func newTableWorkload(db *dataset.Database, name string) (*tableWorkload, error) {
	tbl := db.Fact
	if tbl.NumRows() == 0 {
		return nil, dataset.ErrNoRows
	}
	w := &tableWorkload{name: name, table: tbl.Name}
	for i, f := range tbl.Schema.Fields {
		m := fieldInfo{field: f}
		col := tbl.Columns[i]
		if f.Kind == dataset.Quantitative {
			m.lo, m.hi = math.Inf(1), math.Inf(-1)
			for _, v := range col.Nums {
				if v < m.lo {
					m.lo = v
				}
				if v > m.hi {
					m.hi = v
				}
			}
			if m.hi <= m.lo {
				m.hi = m.lo + 1
			}
			w.quant = append(w.quant, len(w.fields))
		} else {
			m.values = append(m.values, col.Dict.Values()...)
			if len(m.values) == 0 {
				continue
			}
			w.nom = append(w.nom, len(w.fields))
		}
		w.fields = append(w.fields, m)
	}
	if len(w.nom) == 0 || len(w.quant) == 0 {
		return nil, fmt.Errorf("loadgen: table %q needs nominal and quantitative fields", tbl.Name)
	}
	return w, nil
}

func (w *tableWorkload) Name() string { return w.name }

func (w *tableWorkload) Next(rng *rand.Rand, seq int64) Op {
	// Group by a nominal field; aggregate a quantitative one. COUNT vs AVG
	// split mirrors the dominant aggregates of the trace-derived generator.
	groupBy := w.fields[w.nom[int(seq)%len(w.nom)]]
	agg := query.Aggregate{Func: query.Count}
	if rng.Float64() < 0.45 {
		af := w.fields[w.quant[rng.Intn(len(w.quant))]]
		agg = query.Aggregate{Func: query.Avg, Field: af.field.Name}
	}
	q := &query.Query{
		VizName: fmt.Sprintf("load-%s-%d", w.name, seq),
		Table:   w.table,
		Bins:    []query.Binning{{Field: groupBy.field.Name, Kind: dataset.Nominal}},
		Aggs:    []query.Aggregate{agg},
	}
	switch w.name {
	case "hotkey":
		// Zipf over the filter field's dictionary: rank 0 is the hot key.
		// The filter field is a different nominal column than the group-by
		// so predicates stay selective.
		ff := w.fields[w.nom[(int(seq)+1)%len(w.nom)]]
		if w.zipf == nil {
			w.zipf = rand.NewZipf(rng, 1.2, 1, uint64(len(ff.values)-1))
		}
		v := ff.values[int(w.zipf.Uint64())%len(ff.values)]
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: ff.field.Name, Op: query.OpIn, Values: []string{v}},
		}}
	case "recency":
		// Lookback window anchored at the top of the domain, length drawn
		// exponentially with mean 10% of the span: most queries touch the
		// fresh tail, a heavy minority reach deep history.
		qf := w.fields[w.quant[int(seq)%len(w.quant)]]
		span := qf.hi - qf.lo
		frac := rng.ExpFloat64() * 0.10
		if frac > 1 {
			frac = 1
		}
		if frac < 0.01 {
			frac = 0.01
		}
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: qf.field.Name, Op: query.OpRange, Lo: qf.hi - span*frac, Hi: qf.hi},
		}}
	default: // uniform
		ff := w.fields[w.nom[rng.Intn(len(w.nom))]]
		v := ff.values[rng.Intn(len(ff.values))]
		q.Filter = query.Filter{Predicates: []query.Predicate{
			{Field: ff.field.Name, Op: query.OpIn, Values: []string{v}},
		}}
	}
	return Op{Query: q}
}

// mixWorkload interleaves ingest batches into a read workload with
// probability ingestP per arrival.
type mixWorkload struct {
	name      string
	base      Workload
	src       *ingest.Source
	ingestP   float64
	batchRows int
}

func (w *mixWorkload) Name() string { return w.name }

func (w *mixWorkload) Next(rng *rand.Rand, seq int64) Op {
	if rng.Float64() < w.ingestP {
		b, err := w.src.Next(w.batchRows)
		if err == nil {
			return Op{Batch: b}
		}
		// Source failure: fall through to a read so the arrival still
		// offers load (the error is a generator bug, not a server state).
	}
	return w.base.Next(rng, seq)
}
