package driver

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts the driver's relationship with time: interaction
// timestamps, think-time sleeps and time-requirement deadlines all go
// through it. The benchmark runs on WallClock; tests and simulations inject
// a SimClock so think time costs no wall-clock and deadline waits are
// bounded, which turns seconds of real sleeping in the driver test suite
// into microseconds.
type Clock interface {
	// Now returns the current time on this clock's timeline.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time.
	Sleep(d time.Duration)
	// NewTimer returns a timer that fires after d of this clock's time.
	// Callers must Stop timers they abandon (a deadline that lost the race
	// against query completion), exactly like time.Timer.
	NewTimer(d time.Duration) Timer
}

// Timer is a stoppable one-shot clock timer.
type Timer interface {
	// C fires at most once, when the timer elapses.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// pending. After Stop the channel never fires.
	Stop() bool
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// NewTimer implements Clock.
func (WallClock) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTimer struct{ t *time.Timer }

func (t wallTimer) C() <-chan time.Time { return t.t.C }
func (t wallTimer) Stop() bool          { return t.t.Stop() }

// SimClock is a virtual clock for driver tests and simulations. Its
// timeline advances only through its own API:
//
//   - Sleep(d) advances virtual time by d and returns immediately, so think
//     times cost nothing real;
//   - a timer fires when virtual time reaches its target — either because a
//     Sleep (any goroutine's) advanced past it, or, after Grace of real
//     time has elapsed with the timer still pending, by force-advancing the
//     virtual clock to the target. The grace bound keeps time-requirement
//     deadlines meaningful against real engine execution (a query gets up
//     to Grace of real CPU time before its virtual deadline fires) while
//     capping how long any deadline wait can really take.
//
// Timers stopped before firing leave the timeline untouched, so runs whose
// queries complete within their deadlines are fully deterministic: virtual
// time advances exactly by the think times slept.
//
// The timeline is shared: in a multi-user replay every user's Sleep
// advances the same virtual clock, so one user's think time can carry
// another user's deadline past its target. Multi-user tests on a SimClock
// should size the time requirement against the aggregate virtual think
// time of all users, not a single think gap.
type SimClock struct {
	// Grace is the real-time bound before a pending timer force-fires.
	// The zero value means DefaultSimGrace.
	Grace time.Duration

	mu     sync.Mutex
	now    time.Time
	timers []*simTimer // pending, unordered
}

// DefaultSimGrace bounds how much real time a SimClock timer waits before
// force-advancing virtual time to its target.
const DefaultSimGrace = time.Millisecond

// NewSimClock returns a SimClock whose timeline starts at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

func (c *SimClock) grace() time.Duration {
	if c.Grace > 0 {
		return c.Grace
	}
	return DefaultSimGrace
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it advances virtual time immediately and fires
// every timer the advance passes.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.advanceLocked(c.now.Add(d))
	c.mu.Unlock()
}

// Advance moves virtual time forward by d (an explicit test hook; Sleep is
// the driver-facing form).
func (c *SimClock) Advance(d time.Duration) { c.Sleep(d) }

// advanceLocked moves the timeline to target (never backwards) and fires
// due timers. Caller holds c.mu.
func (c *SimClock) advanceLocked(target time.Time) {
	if target.After(c.now) {
		c.now = target
	}
	if len(c.timers) == 0 {
		return
	}
	// Fire in deadline order so a single large advance plays out like the
	// equivalent sequence of small ones.
	var due []*simTimer
	rest := c.timers[:0]
	for _, t := range c.timers {
		if !t.target.After(c.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	sort.Slice(due, func(i, j int) bool { return due[i].target.Before(due[j].target) })
	for _, t := range due {
		t.fireLocked(c.now)
	}
}

// NewTimer implements Clock.
func (c *SimClock) NewTimer(d time.Duration) Timer {
	t := &simTimer{c: c, ch: make(chan time.Time, 1), cancel: make(chan struct{})}
	c.mu.Lock()
	t.target = c.now.Add(d)
	if d <= 0 {
		t.fireLocked(t.target)
		c.mu.Unlock()
		return t
	}
	c.timers = append(c.timers, t)
	c.mu.Unlock()

	// Grace watchdog: if nothing advances virtual time past the target
	// within the real-time grace, force the timeline there.
	go func() {
		real := time.NewTimer(c.grace())
		defer real.Stop()
		select {
		case <-t.cancel:
		case <-t.fired():
		case <-real.C:
			c.mu.Lock()
			if !t.done {
				c.advanceLocked(t.target)
			}
			c.mu.Unlock()
		}
	}()
	return t
}

// simTimer is one pending SimClock timer.
type simTimer struct {
	c      *SimClock
	target time.Time
	ch     chan time.Time
	cancel chan struct{}

	// done/doneCh guarded by c.mu.
	done   bool
	doneCh chan struct{}
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

// fired returns a channel closed once the timer fired; lazily created.
func (t *simTimer) fired() <-chan struct{} {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.doneCh == nil {
		t.doneCh = make(chan struct{})
		if t.done {
			close(t.doneCh)
		}
	}
	return t.doneCh
}

// fireLocked delivers the tick. Caller holds c.mu; the buffered channel
// receives exactly one send per timer, so the send never blocks.
func (t *simTimer) fireLocked(now time.Time) {
	if t.done {
		return
	}
	t.done = true
	if t.doneCh != nil {
		close(t.doneCh)
	}
	t.ch <- now
}

// Stop implements Timer.
func (t *simTimer) Stop() bool {
	t.c.mu.Lock()
	wasPending := !t.done
	t.done = true
	if t.doneCh != nil && wasPending {
		close(t.doneCh)
	}
	for i, o := range t.c.timers {
		if o == t {
			t.c.timers = append(t.c.timers[:i], t.c.timers[i+1:]...)
			break
		}
	}
	t.c.mu.Unlock()
	if wasPending {
		close(t.cancel)
	}
	return wasPending
}

var (
	_ Clock = WallClock{}
	_ Clock = (*SimClock)(nil)
)
