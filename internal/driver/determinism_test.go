package driver

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/enginetest"
	"idebench/internal/groundtruth"
	"idebench/internal/workflow"
)

// TestWorkflowGenerationDeterministic pins the -seed contract: the same
// seed must generate byte-identical workflow sets, across independent
// generator instances. A hidden map iteration or time dependence in the
// generator shows up here as a diff.
func TestWorkflowGenerationDeterministic(t *testing.T) {
	genOnce := func() []byte {
		db := enginetest.SmallDB(5000, 3)
		gen, err := workflow.NewGenerator(db.Fact)
		if err != nil {
			t.Fatal(err)
		}
		flows, err := gen.GenerateSet(2, 14, 77)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := workflow.WriteJSON(&buf, flows); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := genOnce(), genOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed generated different workflow JSON (%d vs %d bytes)", len(a), len(b))
	}
}

// replayRecords runs the full pipeline — dataset, generated workflows,
// prepared engine, driver replay on a pure-virtual clock — and marshals the
// records. Everything is seeded and the clock advances only by think time,
// so two calls must agree byte-for-byte, timestamps and metrics included.
func replayRecords(t *testing.T) []byte {
	t.Helper()
	db := enginetest.SmallDB(20000, 7)
	e := exactdb.New()
	// One worker: parallel chunk-stealing changes float accumulation order
	// between runs, which is real scheduling nondeterminism rather than the
	// hidden map/time dependence this test hunts.
	if err := e.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	gen, err := workflow.NewGenerator(db.Fact)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := gen.GenerateSet(1, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	clock := simClock() // huge grace: deadlines never force-fire
	r := New(e, groundtruth.New(db), Config{
		TimeRequirement: 10 * time.Second,
		ThinkTime:       2 * time.Millisecond,
		DataSizeLabel:   "20k",
		Clock:           clock,
	})
	recs, err := r.RunWorkflows(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("replay produced no records")
	}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReplayDeterministic asserts the same seed yields identical Record
// sequences — SQL text, metrics and virtual timestamps — across two full
// runs. Metrics are accumulated in floating point over result bins, so this
// also guards the sorted-iteration contract in metrics.Evaluate.
func TestReplayDeterministic(t *testing.T) {
	a, b := replayRecords(t), replayRecords(t)
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("same seed produced different records at byte %d:\n run1: …%s…\n run2: …%s…",
			i, clip(a, lo, i+80), clip(b, lo, i+80))
	}
}

// TestMultiUserReplayDeterministic runs the concurrent multi-user replay
// twice and compares the record streams with timestamps scrubbed: several
// users share one virtual timeline, so when each sleeps relative to the
// others depends on goroutine scheduling, but what they ask and what they
// get back must not.
func TestMultiUserReplayDeterministic(t *testing.T) {
	runOnce := func() []byte {
		db := enginetest.SmallDB(20000, 7)
		e := exactdb.New()
		if err := e.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
			t.Fatal(err)
		}
		gen, err := workflow.NewGenerator(db.Fact)
		if err != nil {
			t.Fatal(err)
		}
		flows, err := gen.GenerateSet(1, 10, 99)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMulti(e, groundtruth.New(db), MultiConfig{
			Config: Config{
				TimeRequirement: 10 * time.Second,
				ThinkTime:       2 * time.Millisecond,
				Clock:           simClock(),
			},
			Users: 4,
			Seed:  5,
		})
		res, err := m.Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		recs := append([]Record(nil), res.Records...)
		for i := range recs {
			recs[i].StartTime = time.Time{}
			recs[i].EndTime = time.Time{}
		}
		data, err := json.Marshal(recs)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("multi-user replay not deterministic at byte %d:\n run1: …%s…\n run2: …%s…",
			i, clip(a, lo, i+80), clip(b, lo, i+80))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func clip(b []byte, lo, hi int) []byte {
	if hi > len(b) {
		hi = len(b)
	}
	if lo > hi {
		lo = hi
	}
	return b[lo:hi]
}
