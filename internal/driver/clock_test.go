package driver

import (
	"testing"
	"time"
)

func TestSimClockSleepAdvancesVirtualTime(t *testing.T) {
	c := simClock()
	start := c.Now()
	real0 := time.Now()
	c.Sleep(42 * time.Hour)
	if got := c.Now().Sub(start); got != 42*time.Hour {
		t.Errorf("virtual advance %v, want 42h", got)
	}
	if real := time.Since(real0); real > time.Second {
		t.Errorf("Sleep took %v real time, should be instant", real)
	}
}

func TestSimClockSleepFiresDueTimers(t *testing.T) {
	c := simClock()
	early := c.NewTimer(10 * time.Millisecond)
	late := c.NewTimer(10 * time.Hour)
	c.Sleep(time.Second)
	select {
	case tick := <-early.C():
		if want := c.Now().Add(-time.Second).Add(10 * time.Millisecond); tick.Before(want) {
			t.Errorf("timer fired at %v, target %v", tick, want)
		}
	default:
		t.Fatal("timer due within the sleep did not fire")
	}
	select {
	case <-late.C():
		t.Fatal("timer far in the virtual future fired")
	default:
	}
	late.Stop()
}

func TestSimClockStopPreventsFiring(t *testing.T) {
	c := simClock()
	timer := c.NewTimer(time.Millisecond)
	if !timer.Stop() {
		t.Fatal("Stop on a pending timer should report true")
	}
	c.Sleep(time.Second)
	select {
	case <-timer.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
}

func TestSimClockNonPositiveTimerFiresImmediately(t *testing.T) {
	c := simClock()
	timer := c.NewTimer(-time.Second)
	select {
	case <-timer.C():
	default:
		t.Fatal("non-positive timer should be ready immediately")
	}
}

func TestSimClockGraceForceAdvances(t *testing.T) {
	c := NewSimClock(time.Unix(0, 0))
	c.Grace = time.Millisecond
	timer := c.NewTimer(3 * time.Second) // nothing ever advances virtual time
	select {
	case <-timer.C():
	case <-time.After(5 * time.Second):
		t.Fatal("grace watchdog did not fire the timer")
	}
	if got := c.Now(); got.Before(time.Unix(3, 0)) {
		t.Errorf("virtual time %v, want advanced to the timer target", got)
	}
}

func TestWallClockTimer(t *testing.T) {
	var c Clock = WallClock{}
	timer := c.NewTimer(time.Microsecond)
	select {
	case <-timer.C():
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer did not fire")
	}
	if before, after := c.Now(), time.Now(); after.Before(before) {
		t.Error("wall clock not monotone against time.Now")
	}
}
