package driver

import (
	"fmt"
	"testing"
	"time"

	"idebench/internal/engine/exactdb"
	"idebench/internal/engine/progressive"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// multiFlows builds n small distinct workflows against the test fixture.
func multiFlows(n int) []*workflow.Workflow {
	flows := make([]*workflow.Workflow, n)
	for i := range flows {
		a, b := fmt.Sprintf("w%d_a", i), fmt.Sprintf("w%d_b", i)
		flows[i] = &workflow.Workflow{
			Name: fmt.Sprintf("flow-%02d", i), Type: workflow.Mixed,
			Interactions: []workflow.Interaction{
				{Kind: workflow.KindCreateViz, Viz: a, Spec: vizSpec(a)},
				{Kind: workflow.KindCreateViz, Viz: b, Spec: vizSpec(b)},
				{Kind: workflow.KindLink, From: a, To: b},
				{Kind: workflow.KindSelect, Viz: a, Predicate: &workflowPredicate},
			},
		}
	}
	return flows
}

var workflowPredicate = query.Predicate{
	Field: "carrier", Op: query.OpIn, Values: []string{"AA"},
}

func TestMultiRunnerRecordsPerUser(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 20000)
	// The SimClock timeline is shared by all users: any user's virtual
	// think sleep advances every other user's pending deadline. The TR must
	// therefore dwarf the aggregate virtual think time, not just one gap.
	m := NewMulti(e, gt, MultiConfig{
		Config: Config{TimeRequirement: 100 * time.Hour, ThinkTime: 50 * time.Second, Clock: simClock()},
		Users:  4,
		Seed:   7,
	})
	res, err := m.Run(multiFlows(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUser) != 4 {
		t.Fatalf("got %d user streams, want 4", len(res.PerUser))
	}
	// 8 flows × 4 query-producing interactions (create, create, link
	// refresh, select update) = 32 records.
	if len(res.Records) != 32 {
		t.Fatalf("got %d records, want 32", len(res.Records))
	}
	seenUsers := map[int]int{}
	for i, r := range res.Records {
		if r.ID != i {
			t.Errorf("record %d has ID %d, want run-unique renumbering", i, r.ID)
		}
		if r.Users != 4 {
			t.Errorf("record %d has Users=%d, want 4", i, r.Users)
		}
		seenUsers[r.User]++
		if r.Metrics.TRViolated {
			t.Errorf("record %d violated a generous TR", i)
		}
		if r.Metrics.MissingBins != 0 {
			t.Errorf("exact engine under concurrency should be perfect: %+v", r.Metrics)
		}
	}
	for u := 0; u < 4; u++ {
		if seenUsers[u] != 8 {
			t.Errorf("user %d produced %d records, want 8 (2 flows × 4 queries)", u, seenUsers[u])
		}
	}
	if res.WallClock <= 0 {
		t.Error("wall clock not measured")
	}
	if res.QueriesPerSec() <= 0 {
		t.Error("throughput not derived")
	}
}

func TestMultiRunnerSharedScanEngine(t *testing.T) {
	gt, e := prepared(t, progressive.New(progressive.Config{}), 60000)
	m := NewMulti(e, gt, MultiConfig{
		Config: Config{TimeRequirement: 5 * time.Second, Clock: simClock()},
		Users:  3,
		Seed:   7,
	})
	res, err := m.Run(multiFlows(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if !r.Metrics.HasResult {
			t.Errorf("progressive user query delivered nothing: %+v", r)
		}
	}
}

func TestMultiRunnerCapsUsersAtWorkflows(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 2000)
	m := NewMulti(e, gt, MultiConfig{
		Config: Config{TimeRequirement: time.Second, Clock: simClock()},
		Users:  16,
	})
	res, err := m.Run(multiFlows(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUser) != 2 {
		t.Fatalf("16 users over 2 workflows should cap at 2 active users, got %d", len(res.PerUser))
	}
	for _, r := range res.Records {
		if r.Users != 2 {
			t.Errorf("Users=%d, want the effective user count 2", r.Users)
		}
	}
}

func TestMultiRunnerThinkJitterDeterministic(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 2000)
	think := func(seed int64) []time.Duration {
		m := NewMulti(e, gt, MultiConfig{
			Config: Config{ThinkTime: 8 * time.Millisecond},
			Users:  2, ThinkJitter: DefaultThinkJitter, Seed: seed,
		})
		fn := m.thinkStream(1)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	a, b := think(3), think(3)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different jitter at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] != 8*time.Millisecond {
			varied = true
		}
		if min, max := 6*time.Millisecond, 10*time.Millisecond; a[i] < min || a[i] > max {
			t.Errorf("jittered think %v outside ±25%% of 8ms", a[i])
		}
	}
	if !varied {
		t.Error("jitter stream never varied from the base think time")
	}
	c := think(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter streams")
	}
}
