// Package driver implements the benchmark driver (paper Sec. 4.4): it
// replays workflows against a system adapter, maintains the visualization
// graph, issues the concurrent queries each interaction triggers, enforces
// the time requirement (cancelling overdue queries), sleeps the think time
// between interactions, and evaluates every query against ground truth.
//
// Two replay shapes exist. Runner is one simulated analyst on one
// engine.Session — the paper's single-user driver. MultiRunner (multi.go)
// replays K workflows as K concurrent simulated users against one prepared
// engine, each on its own session, which is how the benchmark exercises
// multi-user scaling (shared scans amortizing across users). All waiting
// goes through the Clock abstraction so tests replace real sleeps with
// simulated time.
package driver

import (
	"fmt"
	"time"

	"idebench/internal/engine"
	"idebench/internal/groundtruth"
	"idebench/internal/metrics"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// Config carries the benchmark settings of one run (paper Sec. 4.6).
type Config struct {
	// TimeRequirement is the per-query deadline; queries without a
	// fetchable result at the deadline are cancelled and counted as
	// violations.
	TimeRequirement time.Duration
	// ThinkTime separates consecutive interactions.
	ThinkTime time.Duration
	// DataSizeLabel annotates report rows (e.g. "500k").
	DataSizeLabel string
	// PrecomputeGroundTruth evaluates all ground truths in a replay prepass
	// so reference scans do not compete with the engine for CPU during the
	// timed run. Default true (set by Normalize).
	PrecomputeGroundTruth *bool
	// Clock supplies time; nil means WallClock. Tests inject a SimClock so
	// think times and deadline waits run in simulated time.
	Clock Clock
	// IngestSink handles ingest interactions (nil: workflows containing
	// them fail). With a sink installed the replay is ingest-aware: every
	// delivered result is evaluated against the ground truth of the data
	// version its watermark names, and its staleness (live watermark minus
	// result watermark) is recorded. The ground-truth precompute prepass is
	// skipped — references are version-dependent and resolved at fetch time.
	IngestSink IngestSink
}

// IngestSink is the driver's window into a live-ingestion timeline
// (implemented by ingest.Harness). Ingest applies one event and returns the
// new live watermark; Watermark reads it; TruthAt resolves the exact
// reference for q at the data version a result's watermark names.
type IngestSink interface {
	Ingest(rows int) (watermark int64, err error)
	Watermark() int64
	TruthAt(q *query.Query, watermark int64) (*query.Result, error)
}

func (c Config) precompute() bool {
	return c.PrecomputeGroundTruth == nil || *c.PrecomputeGroundTruth
}

func (c Config) clock() Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return WallClock{}
}

// Record is one row of the detailed report (paper Table 1).
type Record struct {
	ID            int           `json:"id"`
	InteractionID int           `json:"interaction_id"`
	VizName       string        `json:"viz_name"`
	Driver        string        `json:"driver"`
	DataSize      string        `json:"data_size"`
	ThinkTimeMS   float64       `json:"think_time_ms"`
	TimeReqMS     float64       `json:"time_req_ms"`
	Workflow      string        `json:"workflow"`
	WorkflowType  workflow.Type `json:"workflow_type"`
	// User identifies the simulated user that issued the query (0 for
	// single-user replays); Users is the concurrent-user count of the run
	// (1 for single-user replays), the grouping axis of the user-scaling
	// report.
	User  int `json:"user"`
	Users int `json:"users"`

	StartTime    time.Time            `json:"start_time"`
	EndTime      time.Time            `json:"end_time"`
	BinDims      int                  `json:"bin_dims"`
	BinningType  string               `json:"binning_type"`
	AggType      string               `json:"agg_type"`
	ConcurrentQs int                  `json:"concurrent_queries"`
	SQL          string               `json:"sql"`
	Metrics      metrics.QueryMetrics `json:"metrics"`
}

// LatencyMS is the query's driver-observed latency in milliseconds: the
// time from issue until its result was fetched (the TR for cancelled
// queries).
func (r Record) LatencyMS() float64 {
	return float64(r.EndTime.Sub(r.StartTime)) / float64(time.Millisecond)
}

// Runner replays workflows as one simulated analyst on one engine session.
type Runner struct {
	name   string
	sess   engine.Session
	gt     *groundtruth.Cache
	cfg    Config
	clock  Clock
	nextID int

	// deferred queues the ground-truth evaluations of an ingest-aware
	// replay, one entry per record in order. Versioned references cannot be
	// pre-warmed (versions are minted at replay time), so instead of
	// scanning reference tables inline between timed queries — competing
	// with the engine for CPU exactly like the prepass PR 3 eliminated —
	// the runner captures (query, result, live watermark) at fetch time and
	// resolves the metrics after the replay. RunWorkflow resolves its own
	// records; MultiRunner defers until every user finished and the wall
	// clock is closed.
	deferred     []deferredEval
	deferResolve bool

	// Multi-user annotations, set by MultiRunner.
	user  int
	users int
	// thinkFor returns the think time before interaction idx+1; nil means
	// the constant cfg.ThinkTime. MultiRunner installs per-user jitter.
	thinkFor func(idx int) time.Duration
}

// deferredEval is one postponed ground-truth evaluation.
type deferredEval struct {
	q    *query.Query
	res  *query.Result // nil: nothing fetchable at the deadline
	live int64         // sink watermark at fetch time
}

// New builds a runner on the engine's shared default session. The engine
// must already be prepared for the same database the ground-truth cache is
// bound to.
func New(eng engine.Engine, gt *groundtruth.Cache, cfg Config) *Runner {
	return NewOnSession(eng.Name(), engine.NewEngineSession(eng), gt, cfg)
}

// NewOnSession builds a runner on an explicit session; name labels records
// (normally the engine name). MultiRunner opens one session per user and
// builds its runners this way.
func NewOnSession(name string, sess engine.Session, gt *groundtruth.Cache, cfg Config) *Runner {
	return &Runner{name: name, sess: sess, gt: gt, cfg: cfg, clock: cfg.clock(), users: 1}
}

// RunWorkflow replays one workflow and returns a record per executed query.
func (r *Runner) RunWorkflow(w *workflow.Workflow) ([]Record, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if r.cfg.precompute() && r.cfg.IngestSink == nil {
		if err := r.warmGroundTruth(w); err != nil {
			return nil, err
		}
	}

	graph := workflow.NewGraph()
	r.sess.WorkflowStart()
	defer r.sess.WorkflowEnd()

	var records []Record
	for idx, in := range w.Interactions {
		eff, err := graph.Apply(in)
		if err != nil {
			return nil, fmt.Errorf("driver: workflow %s interaction %d: %w", w.Name, idx, err)
		}
		if eff.NewLink != nil {
			r.sess.LinkVizs(eff.NewLink[0], eff.NewLink[1])
		}
		if eff.Discarded != "" {
			r.sess.DeleteViz(eff.Discarded)
		}
		if eff.IngestRows > 0 {
			if r.cfg.IngestSink == nil {
				return nil, fmt.Errorf("driver: workflow %s interaction %d: ingest event without an ingest sink", w.Name, idx)
			}
			if _, err := r.cfg.IngestSink.Ingest(eff.IngestRows); err != nil {
				return nil, fmt.Errorf("driver: workflow %s interaction %d: %w", w.Name, idx, err)
			}
		}

		recs, err := r.runQueries(w, idx, eff.Queries)
		if err != nil {
			return nil, err
		}
		records = append(records, recs...)

		if idx < len(w.Interactions)-1 {
			if think := r.think(idx); think > 0 {
				r.clock.Sleep(think)
			}
		}
	}
	if !r.deferResolve {
		if err := r.resolveDeferred(records); err != nil {
			return nil, err
		}
	}
	return records, nil
}

// resolveDeferred computes the postponed ground-truth evaluations of an
// ingest-aware replay for recs, which must be exactly the records the
// deferred queue was built for, in order. The queue is cleared. This runs
// after the timed replay (MultiRunner calls it once the wall clock is
// closed), so O(table) reference scans never compete with engine scans
// racing their deadlines.
func (r *Runner) resolveDeferred(recs []Record) error {
	sink := r.cfg.IngestSink
	if sink == nil {
		return nil
	}
	if len(r.deferred) != len(recs) {
		return fmt.Errorf("driver: %d deferred evaluations for %d records", len(r.deferred), len(recs))
	}
	for i, d := range r.deferred {
		// Evaluate against the truth of the data version the result claims
		// (its watermark); staleness is how far the live table had moved
		// past that version when the result was fetched.
		w := d.live
		if d.res != nil && d.res.Watermark > 0 {
			w = d.res.Watermark
		}
		gt, err := sink.TruthAt(d.q, w)
		if err != nil {
			return fmt.Errorf("driver: ground truth for %s: %w", d.q.VizName, err)
		}
		if d.res == nil {
			recs[i].Metrics = metrics.Violated(gt)
			continue
		}
		m := metrics.Evaluate(d.res, gt, false)
		if s := float64(d.live - w); s > 0 {
			m.StalenessRows = s
		} else {
			m.StalenessRows = 0
		}
		recs[i].Metrics = m
	}
	r.deferred = r.deferred[:0]
	return nil
}

// think returns the think time after interaction idx.
func (r *Runner) think(idx int) time.Duration {
	if r.thinkFor != nil {
		return r.thinkFor(idx)
	}
	return r.cfg.ThinkTime
}

// warmGroundTruth dry-replays the workflow, computing every query's exact
// reference before the timed run.
func (r *Runner) warmGroundTruth(w *workflow.Workflow) error {
	graph := workflow.NewGraph()
	for idx, in := range w.Interactions {
		eff, err := graph.Apply(in)
		if err != nil {
			return fmt.Errorf("driver: workflow %s interaction %d: %w", w.Name, idx, err)
		}
		for _, q := range eff.Queries {
			if _, err := r.gt.Get(q); err != nil {
				return fmt.Errorf("driver: ground truth for %s: %w", q.VizName, err)
			}
		}
	}
	return nil
}

// runQueries launches all queries of one interaction simultaneously,
// enforces the TR, and evaluates each result.
func (r *Runner) runQueries(w *workflow.Workflow, interactionID int, qs []*query.Query) ([]Record, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	type running struct {
		q     *query.Query
		h     engine.Handle
		start time.Time
		err   error
	}
	rs := make([]running, len(qs))
	for i, q := range qs {
		rs[i].q = q
		rs[i].start = r.clock.Now()
		h, err := r.sess.StartQuery(q)
		if err != nil {
			rs[i].err = err
			continue
		}
		rs[i].h = h
	}
	deadline := r.clock.Now().Add(r.cfg.TimeRequirement)

	records := make([]Record, 0, len(qs))
	for i := range rs {
		ru := &rs[i]
		if ru.err != nil {
			return nil, fmt.Errorf("driver: start query for %s: %w", ru.q.VizName, ru.err)
		}
		// Wait until the query finishes or the shared deadline passes.
		var res *query.Result
		t := r.clock.NewTimer(deadline.Sub(r.clock.Now()))
		select {
		case <-ru.h.Done():
		case <-t.C():
		}
		t.Stop()
		res = ru.h.Snapshot()
		ru.h.Cancel()
		end := r.clock.Now()

		var m metrics.QueryMetrics
		if sink := r.cfg.IngestSink; sink != nil {
			// Version-aware evaluation is postponed (see Runner.deferred):
			// capture what fetch time alone can know and leave the metrics
			// to resolveDeferred, so reference scans never run inside the
			// timed window.
			r.deferred = append(r.deferred, deferredEval{q: ru.q, res: res, live: sink.Watermark()})
		} else {
			gt, err := r.gt.Get(ru.q)
			if err != nil {
				return nil, fmt.Errorf("driver: ground truth for %s: %w", ru.q.VizName, err)
			}
			if res == nil {
				m = metrics.Violated(gt)
			} else {
				m = metrics.Evaluate(res, gt, false)
			}
		}

		r.nextID++
		records = append(records, Record{
			ID:            r.nextID - 1,
			InteractionID: interactionID,
			VizName:       ru.q.VizName,
			Driver:        r.name,
			DataSize:      r.cfg.DataSizeLabel,
			ThinkTimeMS:   float64(r.cfg.ThinkTime) / float64(time.Millisecond),
			TimeReqMS:     float64(r.cfg.TimeRequirement) / float64(time.Millisecond),
			Workflow:      w.Name,
			WorkflowType:  w.Type,
			User:          r.user,
			Users:         r.users,
			StartTime:     ru.start,
			EndTime:       end,
			BinDims:       ru.q.BinDims(),
			BinningType:   ru.q.BinningType(),
			AggType:       ru.q.AggType(),
			ConcurrentQs:  len(qs),
			SQL:           ru.q.ToSQL(),
			Metrics:       m,
		})
	}
	return records, nil
}

// RunWorkflows replays several workflows sequentially, concatenating
// records.
func (r *Runner) RunWorkflows(flows []*workflow.Workflow) ([]Record, error) {
	var all []Record
	for _, w := range flows {
		recs, err := r.RunWorkflow(w)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	return all, nil
}
