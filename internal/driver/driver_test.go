package driver

import (
	"testing"
	"time"

	"idebench/internal/dataset"
	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/engine/onlinedb"
	"idebench/internal/engine/progressive"
	"idebench/internal/enginetest"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

func vizSpec(name string) *workflow.VizSpec {
	return &workflow.VizSpec{
		Name:  name,
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:  []query.Aggregate{{Func: query.Count}},
	}
}

func simpleWorkflow() *workflow.Workflow {
	return &workflow.Workflow{
		Name: "test", Type: workflow.Mixed,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "a", Spec: vizSpec("a")},
			{Kind: workflow.KindCreateViz, Viz: "b", Spec: vizSpec("b")},
			{Kind: workflow.KindLink, From: "a", To: "b"},
			{Kind: workflow.KindSelect, Viz: "a", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{"AA"}}},
			{Kind: workflow.KindDiscard, Viz: "b"},
		},
	}
}

func prepared(t *testing.T, e engine.Engine, rows int) (*groundtruth.Cache, engine.Engine) {
	t.Helper()
	db := enginetest.SmallDB(rows, 11)
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	return groundtruth.New(db), e
}

// simClock returns a SimClock whose deadline timers never force-fire: for
// tests where every query is expected to complete well inside its TR, so
// neither think time nor deadline waits cost real wall-clock.
func simClock() *SimClock {
	c := NewSimClock(time.Unix(1_000_000, 0))
	c.Grace = time.Hour
	return c
}

func TestRunWorkflowRecords(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 20000)
	r := New(e, gt, Config{
		TimeRequirement: 2 * time.Second,
		ThinkTime:       time.Millisecond,
		DataSizeLabel:   "20k",
		Clock:           simClock(),
	})
	recs, err := r.RunWorkflow(simpleWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	// create(a)=1, create(b)=1, link refreshes b=1, select updates b=1,
	// discard=0 → 4 records.
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.ID != i {
			t.Errorf("record %d has ID %d", i, rec.ID)
		}
		if rec.Driver != "exactdb" || rec.DataSize != "20k" {
			t.Error("record metadata wrong")
		}
		if rec.Metrics.TRViolated {
			t.Errorf("record %d violated a 2s TR on 20k rows", i)
		}
		if rec.Metrics.MissingBins != 0 || rec.Metrics.RelErrAvg != 0 {
			t.Errorf("exact engine should be perfect: %+v", rec.Metrics)
		}
		if rec.EndTime.Before(rec.StartTime) {
			t.Error("end before start")
		}
		if rec.SQL == "" {
			t.Error("record missing SQL rendering")
		}
	}
	// The selection-triggered query must carry the filter.
	last := recs[3]
	if last.VizName != "b" || last.InteractionID != 3 {
		t.Errorf("last record: %+v", last)
	}
}

func TestTRViolationOnTinyDeadline(t *testing.T) {
	// A blocking engine with a heavy per-tuple cost model: the scan reliably
	// takes tens of milliseconds, so a 1ns deadline always fires first even
	// if the driver goroutine stalls between issuing and polling. (A plain
	// columnar scan can finish inside a scheduler stall on a loaded host,
	// making the deadline-vs-done select a coin flip.)
	gt, e := prepared(t, onlinedb.New(onlinedb.Config{TupleOverhead: 512}), 100000)
	r := New(e, gt, Config{
		TimeRequirement: time.Nanosecond, // impossible deadline
		DataSizeLabel:   "100k",
	})
	// AVG forces onlinedb's blocking fallback: no intermediate reports, so
	// nothing is fetchable until the (slow) scan completes.
	blockingSpec := &workflow.VizSpec{
		Name:  "a",
		Table: "flights",
		Bins:  []query.Binning{{Field: "carrier", Kind: dataset.Nominal}},
		Aggs:  []query.Aggregate{{Func: query.Avg, Field: "dep_delay"}},
	}
	w := &workflow.Workflow{
		Name: "tiny", Type: workflow.IndependentBrowsing,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "a", Spec: blockingSpec},
		},
	}
	recs, err := r.RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatal("expected one record")
	}
	m := recs[0].Metrics
	if !m.TRViolated || m.HasResult {
		t.Errorf("blocking engine must violate a 1ns TR: %+v", m)
	}
	if m.MissingBins != 1 {
		t.Errorf("violated query should miss all bins: %v", m.MissingBins)
	}
}

func TestProgressiveNeverViolates(t *testing.T) {
	gt, e := prepared(t, progressive.New(progressive.Config{ChunkRows: 256}), 400000)
	// Simulated time with a real-time grace: the 5ms virtual deadline fires
	// once the engine had up to 20ms of real execution — a partial result
	// must be fetchable whether or not the scan finished by then.
	clock := NewSimClock(time.Unix(1_000_000, 0))
	clock.Grace = 20 * time.Millisecond
	r := New(e, gt, Config{
		TimeRequirement: 5 * time.Millisecond,
		DataSizeLabel:   "400k",
		Clock:           clock,
	})
	w := &workflow.Workflow{
		Name: "prog", Type: workflow.IndependentBrowsing,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "a", Spec: vizSpec("a")},
		},
	}
	recs, err := r.RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Metrics.TRViolated {
		t.Error("progressive engine should answer any TR")
	}
	if !recs[0].Metrics.HasResult {
		t.Error("progressive result missing")
	}
}

func TestConcurrentQueriesRecorded(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 5000)
	r := New(e, gt, Config{TimeRequirement: 2 * time.Second, Clock: simClock()})
	w := &workflow.Workflow{
		Name: "fanout", Type: workflow.OneToNLinking,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindCreateViz, Viz: "src", Spec: vizSpec("src")},
			{Kind: workflow.KindCreateViz, Viz: "t1", Spec: vizSpec("t1")},
			{Kind: workflow.KindCreateViz, Viz: "t2", Spec: vizSpec("t2")},
			{Kind: workflow.KindLink, From: "src", To: "t1"},
			{Kind: workflow.KindLink, From: "src", To: "t2"},
			{Kind: workflow.KindSelect, Viz: "src", Predicate: &query.Predicate{
				Field: "carrier", Op: query.OpIn, Values: []string{"UA"}}},
		},
	}
	recs, err := r.RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	// The selection updates t1 and t2 concurrently.
	var fanout []Record
	for _, rec := range recs {
		if rec.InteractionID == 5 {
			fanout = append(fanout, rec)
		}
	}
	if len(fanout) != 2 {
		t.Fatalf("selection should trigger 2 queries, got %d", len(fanout))
	}
	for _, rec := range fanout {
		if rec.ConcurrentQs != 2 {
			t.Errorf("ConcurrentQs = %d, want 2", rec.ConcurrentQs)
		}
	}
}

func TestInvalidWorkflowRejected(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 1000)
	r := New(e, gt, Config{TimeRequirement: time.Second})
	w := &workflow.Workflow{
		Name: "bad", Type: workflow.Mixed,
		Interactions: []workflow.Interaction{
			{Kind: workflow.KindFilter, Viz: "ghost"},
		},
	}
	if _, err := r.RunWorkflow(w); err == nil {
		t.Error("invalid workflow should be rejected")
	}
}

func TestRunWorkflowsConcatenates(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 2000)
	r := New(e, gt, Config{TimeRequirement: time.Second, Clock: simClock()})
	w1 := &workflow.Workflow{Name: "w1", Type: workflow.Mixed, Interactions: []workflow.Interaction{
		{Kind: workflow.KindCreateViz, Viz: "a", Spec: vizSpec("a")},
	}}
	w2 := &workflow.Workflow{Name: "w2", Type: workflow.Mixed, Interactions: []workflow.Interaction{
		{Kind: workflow.KindCreateViz, Viz: "a", Spec: vizSpec("a")},
	}}
	recs, err := r.RunWorkflows([]*workflow.Workflow{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Workflow != "w1" || recs[1].Workflow != "w2" {
		t.Error("workflow names wrong")
	}
	if recs[1].ID <= recs[0].ID {
		t.Error("IDs should increase across workflows")
	}
}

func TestThinkTimeSeparatesInteractions(t *testing.T) {
	gt, e := prepared(t, exactdb.New(), 1000)
	// Hefty think times that would dominate the test's wall-clock on a real
	// clock; on the simulated clock they cost nothing real and show up only
	// on the virtual timeline.
	think := 30 * time.Second
	clock := simClock()
	r := New(e, gt, Config{TimeRequirement: 500 * time.Second, ThinkTime: think, Clock: clock})
	w := &workflow.Workflow{Name: "tt", Type: workflow.Mixed, Interactions: []workflow.Interaction{
		{Kind: workflow.KindCreateViz, Viz: "a", Spec: vizSpec("a")},
		{Kind: workflow.KindCreateViz, Viz: "b", Spec: vizSpec("b")},
	}}
	start := clock.Now()
	recs, err := r.RunWorkflow(w)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now().Sub(start)
	if elapsed < think {
		t.Errorf("virtual run took %v, should include %v think time", elapsed, think)
	}
	// No think sleep after the last interaction.
	if elapsed >= 2*think {
		t.Errorf("virtual run took %v, want exactly one think gap of %v", elapsed, think)
	}
	// Records sit on the virtual timeline: the second interaction's query
	// starts one think time after the first.
	if gap := recs[1].StartTime.Sub(recs[0].StartTime); gap < think {
		t.Errorf("interactions %v apart on the virtual clock, want >= %v", gap, think)
	}
}

func TestGroundTruthPrecomputed(t *testing.T) {
	db := enginetest.SmallDB(2000, 11)
	e := exactdb.New()
	if err := e.Prepare(db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	gt := groundtruth.New(db)
	r := New(e, gt, Config{TimeRequirement: time.Second})
	if _, err := r.RunWorkflow(simpleWorkflow()); err != nil {
		t.Fatal(err)
	}
	if gt.Size() == 0 {
		t.Error("ground truth cache should be populated")
	}
}
