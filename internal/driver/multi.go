package driver

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"idebench/internal/engine"
	"idebench/internal/groundtruth"
	"idebench/internal/query"
	"idebench/internal/workflow"
)

// MultiConfig parameterizes a concurrent multi-user replay.
type MultiConfig struct {
	Config
	// Users is the number of concurrent simulated users (default 1).
	// Workflows are dealt to users round-robin; each user replays its share
	// sequentially on its own engine session while all users run
	// concurrently.
	Users int
	// ThinkJitter is the ± fraction by which each user's think time varies
	// around Config.ThinkTime, drawn per interaction from the user's own
	// deterministic stream. Zero means every user sleeps exactly
	// Config.ThinkTime — the honest default for the raw driver API, where a
	// recorded run must match its settings. Benchmark entry points
	// (core.Prepared.RunUsers, the user-sweep experiment) opt into jitter:
	// real analysts do not pause in lockstep, and jitter keeps simulated
	// users from issuing queries in convoy.
	ThinkJitter float64
	// Seed drives the per-user jitter streams.
	Seed int64
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.Users <= 0 {
		c.Users = 1
	}
	if c.ThinkJitter < 0 {
		c.ThinkJitter = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DefaultThinkJitter is the jitter fraction the benchmark harness layers
// use when simulating independent analysts.
const DefaultThinkJitter = 0.25

// MultiResult is the outcome of one multi-user replay.
type MultiResult struct {
	// Records holds every user's records, concatenated in user order and
	// renumbered with run-unique IDs (deterministic given deterministic
	// per-user replays).
	Records []Record
	// PerUser holds each user's record stream separately, indexed by user.
	PerUser [][]Record
	// Users is the effective concurrent-user count: the configured count,
	// capped at the number of workflows (a user with nothing to replay is
	// not a user). Callers that asked for more should surface the cap.
	Users int
	// WallClock is the replay's total duration on the configured clock,
	// ground-truth warming excluded.
	WallClock time.Duration
}

// QueriesPerSec is the aggregate throughput across all users.
func (m *MultiResult) QueriesPerSec() float64 {
	if m.WallClock <= 0 {
		return 0
	}
	return float64(len(m.Records)) / m.WallClock.Seconds()
}

// MultiRunner replays workflows as K concurrent simulated users against one
// prepared engine. Each user runs on its own engine.Session (own viz
// namespace, links and reuse caches) so that what the engine shares between
// users — scan bandwidth on a shared-scan engine, nothing on an independent
// one — is exactly what a multi-user deployment would share.
type MultiRunner struct {
	eng engine.Engine
	gt  *groundtruth.Cache
	cfg MultiConfig
}

// NewMulti builds a multi-user runner. The engine must already be prepared
// for the same database the ground-truth cache is bound to.
func NewMulti(eng engine.Engine, gt *groundtruth.Cache, cfg MultiConfig) *MultiRunner {
	return &MultiRunner{eng: eng, gt: gt, cfg: cfg.withDefaults()}
}

// Run replays flows across the configured number of users. Ground truths
// for every workflow are computed in a single-threaded prepass (regardless
// of Config.PrecomputeGroundTruth) so reference scans never compete with the
// engine during the timed concurrent run.
func (m *MultiRunner) Run(flows []*workflow.Workflow) (*MultiResult, error) {
	if len(flows) == 0 {
		return &MultiResult{}, nil
	}
	clock := m.cfg.clock()

	// Warm ground truth up front, then disable the per-workflow prepass.
	// Ingest-aware replays skip warming: references are version-dependent
	// and resolve through the sink at fetch time.
	warmCfg := m.cfg.Config
	off := false
	warmCfg.PrecomputeGroundTruth = &off
	warm := NewOnSession(m.eng.Name(), noopSession{}, m.gt, warmCfg)
	for _, w := range flows {
		if err := w.Validate(); err != nil {
			return nil, err
		}
		if m.cfg.IngestSink != nil {
			continue
		}
		if err := warm.warmGroundTruth(w); err != nil {
			return nil, err
		}
	}

	users := m.cfg.Users
	if users > len(flows) {
		users = len(flows)
	}
	perUser := make([][]*workflow.Workflow, users)
	for i, w := range flows {
		perUser[i%users] = append(perUser[i%users], w)
	}

	res := &MultiResult{PerUser: make([][]Record, users), Users: users}
	errs := make([]error, users)
	runners := make([]*Runner, users)
	start := clock.Now()
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			sess := m.eng.OpenSession()
			defer sess.Close()
			r := NewOnSession(m.eng.Name(), sess, m.gt, warmCfg)
			r.user = u
			r.users = users
			r.thinkFor = m.thinkStream(u)
			// Ingest-aware evaluations resolve below, once every user is
			// done and the wall clock is closed — a finished user's
			// reference scans must not steal CPU from users still racing
			// deadlines.
			r.deferResolve = true
			runners[u] = r
			recs, err := r.RunWorkflows(perUser[u])
			res.PerUser[u] = recs
			errs[u] = err
		}(u)
	}
	wg.Wait()
	res.WallClock = clock.Now().Sub(start)
	for u, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("driver: user %d: %w", u, err)
		}
	}
	for u, r := range runners {
		if err := r.resolveDeferred(res.PerUser[u]); err != nil {
			return nil, fmt.Errorf("driver: user %d: %w", u, err)
		}
	}
	id := 0
	for u := range res.PerUser {
		for i := range res.PerUser[u] {
			res.PerUser[u][i].ID = id
			id++
			res.Records = append(res.Records, res.PerUser[u][i])
		}
	}
	return res, nil
}

// thinkStream returns user u's jittered think-time function: think times
// are drawn deterministically from the user's own seed, so replays are
// reproducible per user regardless of scheduling.
func (m *MultiRunner) thinkStream(u int) func(idx int) time.Duration {
	base := m.cfg.ThinkTime
	jitter := m.cfg.ThinkJitter
	if base <= 0 || jitter == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + int64(u)*7919))
	return func(idx int) time.Duration {
		f := 1 + jitter*(2*rng.Float64()-1)
		return time.Duration(float64(base) * f)
	}
}

// noopSession backs the ground-truth warm-up runner, which only ever calls
// warmGroundTruth and must not issue engine work.
type noopSession struct{}

func (noopSession) StartQuery(q *query.Query) (engine.Handle, error) {
	return nil, fmt.Errorf("driver: ground-truth warm-up must not start queries")
}
func (noopSession) LinkVizs(from, to string) {}
func (noopSession) DeleteViz(name string)    {}
func (noopSession) WorkflowStart()           {}
func (noopSession) WorkflowEnd()             {}
func (noopSession) Close()                   {}

var _ engine.Session = noopSession{}
