package driver

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"idebench/internal/engine"
	"idebench/internal/engine/exactdb"
	"idebench/internal/enginetest"
	"idebench/internal/groundtruth"
	"idebench/internal/ingest"
	"idebench/internal/workflow"
)

// ingestReplayRecords runs the full ingest-aware pipeline — dataset,
// generated workflows with interleaved ingest events, a fresh engine, a
// fresh harness over a deterministic batch stream, replay on a pure-virtual
// clock — and marshals the records. Everything is seeded, so two calls must
// agree byte-for-byte: queries, metrics, staleness, virtual timestamps.
func ingestReplayRecords(t *testing.T) []byte {
	t.Helper()
	db := enginetest.SmallDB(20000, 7)
	e := exactdb.New()
	if err := e.Prepare(db, engine.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	gen, err := workflow.NewGenerator(db.Fact)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := gen.GenerateSet(1, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	flows = workflow.InterleaveIngestAll(flows, 3, 400)

	// A deterministic batch stream cut from the table itself: slice i is
	// rows [i*400, (i+1)*400), identical across runs.
	var batches []*ingest.Batch
	for i := 0; i*400+400 <= db.NumRows() && i < 32; i++ {
		batches = append(batches, ingest.FromTable(db.Fact, i*400, (i+1)*400))
	}
	h := ingest.NewHarness(db, ingest.NewFixedSource(batches...), ingest.EngineSink{A: e})

	r := New(e, groundtruth.New(db), Config{
		TimeRequirement: 10 * time.Second,
		ThinkTime:       2 * time.Millisecond,
		DataSizeLabel:   "20k",
		Clock:           simClock(),
		IngestSink:      h,
	})
	recs, err := r.RunWorkflows(flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("ingest replay produced no records")
	}
	if h.IngestedRows() == 0 {
		t.Fatal("ingest replay applied no batches")
	}
	// Every delivered result in this synchronous-absorption setup must be
	// fresh: the engine appends before the next interaction queries.
	for _, rec := range recs {
		if rec.Metrics.StalenessRows != 0 {
			t.Fatalf("record %d has staleness %v, want 0 (synchronous absorption)",
				rec.ID, rec.Metrics.StalenessRows)
		}
	}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestIngestReplayDeterministic pins the determinism satellite: an
// interleaved query+ingest workflow replayed twice on SimClock yields
// byte-identical record streams.
func TestIngestReplayDeterministic(t *testing.T) {
	a, b := ingestReplayRecords(t), ingestReplayRecords(t)
	if !bytes.Equal(a, b) {
		i := firstDiff(a, b)
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("ingest replay not deterministic at byte %d:\n run1: …%s…\n run2: …%s…",
			i, clip(a, lo, i+80), clip(b, lo, i+80))
	}
}

// TestIngestReplayEvaluatesAtVersion checks the version-aware evaluation
// path end-to-end: a replay whose queries always see the freshest version
// must produce zero error against the versioned truth even though the table
// grew mid-run (evaluating against the final table would show phantom
// missing rows for early queries).
func TestIngestReplayEvaluatesAtVersion(t *testing.T) {
	data := ingestReplayRecords(t)
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Metrics.TRViolated {
			t.Fatalf("record %d violated a 10s TR", r.ID)
		}
		if r.Metrics.MissingBins != 0 {
			t.Fatalf("record %d missing %v of its bins against its version's truth",
				r.ID, r.Metrics.MissingBins)
		}
	}
}
